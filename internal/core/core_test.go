package core_test

import (
	"reflect"
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/stats"
)

func TestNewAppliesDefaults(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := p.SarsaConfig()
	if sc.Episodes != 500 || sc.Alpha != 0.75 || sc.Gamma != 0.95 {
		t.Fatalf("sarsa config = %+v", sc)
	}
	rc := p.RewardConfig()
	if rc.Delta != 0.8 || rc.Beta != 0.2 || rc.Epsilon != 0.0025 {
		t.Fatalf("reward config = %+v", rc)
	}
	start := inst.StartIndex()
	if sc.Start != start {
		t.Fatalf("start = %d, want %d (CS 675)", sc.Start, start)
	}
}

func TestNewAppliesOverrides(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{
		Episodes: 100,
		Alpha:    0.5,
		Gamma:    0.6,
		Epsilon:  0.01,
		Delta:    0.6, Beta: 0.4,
		W1: 0.65, W2: 0.35,
		Sim: seqsim.Minimum, HasSim: true,
		Start: "CS 644",
		Seed:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, rc := p.SarsaConfig(), p.RewardConfig()
	if sc.Episodes != 100 || sc.Alpha != 0.5 || sc.Gamma != 0.6 {
		t.Fatalf("sarsa overrides lost: %+v", sc)
	}
	if rc.Epsilon != 0.01 || rc.Delta != 0.6 || rc.Weights.Primary != 0.65 {
		t.Fatalf("reward overrides lost: %+v", rc)
	}
	if rc.Sim != seqsim.Minimum {
		t.Fatal("sim mode override lost")
	}
	if want, _ := inst.Catalog.Index("CS 644"); sc.Start != want {
		t.Fatalf("start override lost: %d", sc.Start)
	}
}

func TestHasGammaMarksZeroIntentional(t *testing.T) {
	inst := univ.Univ1DSCT()
	// Without HasGamma, γ = 0 means "keep the Table III default".
	p, err := core.New(inst, core.Options{Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.SarsaConfig().Gamma != inst.Defaults.Gamma {
		t.Fatalf("γ = %g, want default %g", p.SarsaConfig().Gamma, inst.Defaults.Gamma)
	}
	// With HasGamma, γ = 0 is an explicit myopic-learner override.
	p, err = core.New(inst, core.Options{Gamma: 0, HasGamma: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.SarsaConfig().Gamma != 0 {
		t.Fatalf("γ = %g, want explicit 0", p.SarsaConfig().Gamma)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := core.New(nil, core.Options{}); err == nil {
		t.Fatal("nil instance accepted")
	}
	inst := univ.Univ1DSCT()
	if _, err := core.New(inst, core.Options{Start: "GHOST 101"}); err == nil {
		t.Fatal("unknown start accepted")
	}
	if _, err := core.New(inst, core.Options{Delta: 0.5, Beta: 0.2}); err == nil {
		t.Fatal("non-normalized δ/β accepted")
	}
	if _, err := core.New(inst, core.Options{Alpha: 2}); err == nil {
		t.Fatal("α out of range accepted")
	}
}

func TestLearnAndPlanCourse(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{Episodes: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Learned() {
		t.Fatal("Learned before Learn")
	}
	if _, err := p.Plan(); err == nil {
		t.Fatal("Plan before Learn accepted")
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	if !p.Learned() || p.Policy() == nil {
		t.Fatal("no policy after Learn")
	}
	if len(p.LearningCurve()) != 150 {
		t.Fatalf("learning curve = %d points", len(p.LearningCurve()))
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("plan length = %d, want 10 (H = 30 credits / 3)", len(plan))
	}
	ids := inst.Catalog.SequenceIDs(plan)
	if ids[0] != "CS 675" {
		t.Fatalf("plan starts with %s, want CS 675", ids[0])
	}
}

func TestLearnAndPlanTrip(t *testing.T) {
	inst := trip.NYC().Instance
	p, err := core.New(inst, core.Options{Episodes: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 || len(plan) > 5 {
		t.Fatalf("trip plan length = %d", len(plan))
	}
	if got := inst.Catalog.TotalCredits(plan); got > 6 {
		t.Fatalf("trip time %v exceeds threshold", got)
	}
}

func TestTripOptionOverridesThresholds(t *testing.T) {
	inst := trip.NYC().Instance
	p, err := core.New(inst, core.Options{Episodes: 50, Seed: 5, TimeLimit: 8, MaxDistanceKm: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Env().Hard().Credits != 8 {
		t.Fatalf("time limit = %v, want 8", p.Env().Hard().Credits)
	}
	if p.Env().Hard().MaxDistanceKm != 4 {
		t.Fatalf("distance = %v, want 4", p.Env().Hard().MaxDistanceKm)
	}
	// Negative disables.
	p2, err := core.New(inst, core.Options{Episodes: 50, Seed: 5, MaxDistanceKm: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Env().Hard().MaxDistanceKm != 0 {
		t.Fatal("negative distance should disable the check")
	}
}

func TestSetPolicyForTransfer(t *testing.T) {
	dsct := univ.Univ1DSCT()
	p1, err := core.New(dsct, core.Options{Episodes: 80, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Learn(); err != nil {
		t.Fatal(err)
	}

	p2, err := core.New(dsct, core.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.SetPolicy(p1.Policy()); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Plan(); err != nil {
		t.Fatal(err)
	}

	// Mismatched size is rejected.
	cs := univ.Univ1CS()
	p3, err := core.New(cs, core.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.SetPolicy(p1.Policy()); err == nil {
		t.Fatal("mismatched policy size accepted")
	}
	if err := p3.SetPolicy(nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestPlanFromID(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, _ := core.New(inst, core.Options{Episodes: 60, Seed: 9})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.PlanFromID("CS 636")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Catalog.SequenceIDs(plan)[0] != "CS 636" {
		t.Fatal("PlanFromID ignored start")
	}
	if _, err := p.PlanFromID("GHOST"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestPlanRawVsGuided(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, _ := core.New(inst, core.Options{Episodes: 120, Seed: 10})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	raw, err := p.PlanRaw(inst.StartIndex())
	if err != nil {
		t.Fatal(err)
	}
	guided, err := p.PlanFrom(inst.StartIndex())
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || len(guided) == 0 {
		t.Fatal("empty plans")
	}
}

func TestSelectionOverride(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{Episodes: 40, Seed: 11, Selection: sarsa.QGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if p.SarsaConfig().Selection != sarsa.QGreedy {
		t.Fatal("selection override lost")
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetKindDerivation(t *testing.T) {
	course, _ := core.New(univ.Univ1DSCT(), core.Options{Seed: 12})
	if course.Instance().Kind != dataset.CoursePlanning {
		t.Fatal("wrong kind")
	}
	ep, _ := course.Env().Start(0)
	if ep.Done() {
		t.Fatal("fresh course episode already done")
	}
}

func TestConvergenceSARSAVsQLearning(t *testing.T) {
	// §III-C claims SARSA "is known to converge faster and with fewer
	// errors" than alternatives; compare learning-curve settling points.
	inst := univ.Univ1DSCT()
	converged := func(alg sarsa.Algorithm) int {
		p, err := core.New(inst, core.Options{Episodes: 400, Seed: 17, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Learn(); err != nil {
			t.Fatal(err)
		}
		return stats.ConvergedAt(p.LearningCurve(), 40, 2.0)
	}
	s := converged(sarsa.SARSA)
	q := converged(sarsa.QLearning)
	t.Logf("convergence episodes: sarsa=%d q-learning=%d", s, q)
	if s == -1 {
		t.Fatal("SARSA learning curve never settled")
	}
	// The strict comparison is environment-dependent; assert only that
	// SARSA settles within the learning budget and not grossly later than
	// Q-learning.
	if q != -1 && s > 2*q+50 {
		t.Fatalf("SARSA settled at %d, far beyond Q-learning's %d", s, q)
	}
}

// TestSparsePlansBitIdentical pins the data plane's representation
// boundary: forcing the sparse Q representation on a small catalog
// (DenseQMax 1) must reproduce the dense path's plans bit for bit —
// same training schedule, same recommendation walks, only the storage
// layout differs. This is the property that lets qtable.New switch
// representations by size without a behavioural cliff.
func TestSparsePlansBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		inst *dataset.Instance
	}{
		{"univ1dsct", univ.Univ1DSCT()},
		{"tripNYC", trip.NYC().Instance},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := core.Options{Episodes: 150, Seed: 7}
			dense, err := core.New(tc.inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := dense.Learn(); err != nil {
				t.Fatal(err)
			}
			if !dense.Policy().Q.IsDense() {
				t.Fatal("default options did not produce a dense Q on a small catalog")
			}

			sopts := opts
			sopts.DenseQMax = 1
			sparse, err := core.New(tc.inst, sopts)
			if err != nil {
				t.Fatal(err)
			}
			if err := sparse.Learn(); err != nil {
				t.Fatal(err)
			}
			if sparse.Policy().Q.IsDense() {
				t.Fatal("DenseQMax=1 did not force the sparse representation")
			}

			n := tc.inst.Catalog.Len()
			for start := 0; start < n; start += 7 {
				dp, derr := dense.PlanFrom(start)
				sp, serr := sparse.PlanFrom(start)
				if (derr == nil) != (serr == nil) {
					t.Fatalf("start %d: dense err %v, sparse err %v", start, derr, serr)
				}
				if !reflect.DeepEqual(dp, sp) {
					t.Fatalf("start %d: dense plan %v != sparse plan %v", start, dp, sp)
				}
			}
		})
	}
}
