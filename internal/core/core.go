// Package core assembles the RL-Planner computational framework of §III:
// it wires a dataset instance (catalog + constraints + Table III defaults)
// into an MDP environment with the Equation 2 reward, learns a policy with
// SARSA (Algorithm 1), and produces recommendations. This is the layer the
// public API, the CLIs and the experiment harness drive.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/reward"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

// Options override the instance's Table III defaults; zero values mean
// "use the default". They are the knobs the robustness study (§IV-E)
// sweeps.
type Options struct {
	// Episodes overrides N.
	Episodes int
	// Alpha overrides the learning rate α.
	Alpha float64
	// Gamma overrides the discount factor γ (set HasGamma for γ = 0).
	Gamma float64
	// HasGamma marks Gamma as intentionally set (0 is meaningful).
	HasGamma bool
	// Epsilon overrides the topic threshold ε (set HasEpsilon for ε = 0).
	Epsilon float64
	// HasEpsilon marks Epsilon as intentionally set (0 is meaningful).
	HasEpsilon bool
	// Delta and Beta override the reward mix; both must be set together.
	Delta, Beta float64
	// W1 and W2 override the type weights; both must be set together.
	W1, W2 float64
	// CategoryWeights overrides the per-sub-discipline weights.
	CategoryWeights []float64
	// Sim overrides the similarity aggregation mode.
	Sim seqsim.Mode
	// HasSim marks Sim as intentionally set (Average is the zero value).
	HasSim bool
	// Start overrides the starting item id (s_1).
	Start string
	// Selection overrides the learner's action-selection rule.
	Selection sarsa.Selection
	// Algorithm overrides the TD update rule (SARSA by default).
	Algorithm sarsa.Algorithm
	// SoftThetaGate switches Eq. 5's multiplicative gate to the
	// subtractive-penalty ablation variant (reward.Config.SoftGate).
	SoftThetaGate bool
	// Explore overrides the exploration probability.
	Explore float64
	// DisableExplore runs Algorithm 1 exactly as printed (no exploration).
	DisableExplore bool
	// Seed drives all randomness (0 is a valid fixed seed).
	Seed int64
	// TimeLimit overrides the trip time threshold t (hours).
	TimeLimit float64
	// MaxDistanceKm overrides the trip distance threshold d; negative
	// disables the check.
	MaxDistanceKm float64
	// TrainBudget bounds the wall-clock time of one training run (0 = no
	// bound). The engine layer derives a deadline context from it; SARSA
	// checkpoints its Q table at the deadline and returns the best-so-far
	// policy marked "partial" instead of an error.
	TrainBudget time.Duration
	// TrainWorkers selects the training schedule (sarsa.Config.Workers):
	// 0 keeps the sequential Algorithm 1 loop; any value >= 1 uses the
	// batch-synchronous parallel protocol, which is bit-identical for
	// every worker count. Not part of the environment key — a worker
	// count never changes what is learned under the parallel protocol.
	TrainWorkers int
	// DistMatrixMax overrides the catalog size up to which the
	// environment precomputes the exact n×n distance matrix (<= 0 means
	// geo.DefaultDistMatrixMaxItems) — the -dist-matrix-max operator
	// knob. Larger trip catalogs get exact per-call Haversine, then the
	// quantized neighbor store (see geo.NewDistStore). Part of the
	// environment key: different limits build different geometry.
	DistMatrixMax int
	// DenseQMax overrides the catalog size up to which the learned Q
	// table uses the dense n² representation (<= 0 means
	// qtable.DefaultDenseMaxItems) — the -dense-q-max operator knob.
	DenseQMax int
	// InitQ warm-starts learning from an existing Q table
	// (sarsa.Config.Init): the incremental-retraining path feeds a
	// transfer-mapped table from the nearest artifact here. The table is
	// cloned before use and must cover the instance's catalog size.
	InitQ *qtable.Table
	// OnEpisode, when non-nil, observes each completed learning episode
	// (sarsa.Config.OnEpisode) — an observability/test hook, not a
	// learning knob.
	OnEpisode func(i int)
}

// Planner is a configured RL-Planner for one instance.
type Planner struct {
	inst      *dataset.Instance
	env       *mdp.Env
	rewardCfg reward.Config
	sarsaCfg  sarsa.Config
	result    *sarsa.Result
}

// New builds a planner for the instance with the given overrides.
func New(inst *dataset.Instance, opts Options) (*Planner, error) {
	env, err := BuildEnv(inst, opts)
	if err != nil {
		return nil, err
	}
	return NewWithEnv(inst, opts, env)
}

// envConfig resolves the environment-determining configuration — the
// effective hard constraints and reward parameters after option
// overrides. Everything mdp.NewEnv consumes beyond these comes from the
// instance itself (catalog, soft constraints) or is derived from them
// (the trajectory budget), so two (instance, options) pairs with equal
// envConfig results share one environment.
func envConfig(inst *dataset.Instance, opts Options) (constraints.Hard, reward.Config, error) {
	if inst == nil {
		return constraints.Hard{}, reward.Config{}, fmt.Errorf("core: nil instance")
	}
	if err := inst.Validate(); err != nil {
		return constraints.Hard{}, reward.Config{}, err
	}
	d := inst.Defaults

	hard := inst.Hard
	if opts.TimeLimit > 0 && inst.Kind == dataset.TripPlanning {
		hard.Credits = opts.TimeLimit
	}
	if opts.MaxDistanceKm != 0 {
		if opts.MaxDistanceKm < 0 {
			hard.MaxDistanceKm = 0
		} else {
			hard.MaxDistanceKm = opts.MaxDistanceKm
		}
	}

	rc := reward.Config{
		Delta:    d.Delta,
		Beta:     d.Beta,
		Epsilon:  d.Epsilon,
		Weights:  reward.Weights{Primary: d.W1, Secondary: d.W2, Category: d.CategoryWeights},
		Sim:      d.Sim,
		Template: inst.Soft.Template,
	}
	if opts.Delta != 0 || opts.Beta != 0 {
		rc.Delta, rc.Beta = opts.Delta, opts.Beta
	}
	if opts.HasEpsilon || opts.Epsilon != 0 {
		rc.Epsilon = opts.Epsilon
	}
	if opts.W1 != 0 || opts.W2 != 0 {
		rc.Weights.Primary, rc.Weights.Secondary = opts.W1, opts.W2
	}
	if opts.CategoryWeights != nil {
		rc.Weights.Category = opts.CategoryWeights
	}
	if opts.HasSim {
		rc.Sim = opts.Sim
	}
	// Trip rewards track POI popularity (see reward.Config.PopularityScale).
	rc.PopularityScale = inst.Kind == dataset.TripPlanning
	rc.SoftGate = opts.SoftThetaGate
	return hard, rc, nil
}

// BuildEnv constructs the MDP environment for (instance, options)
// without a planner around it — the entry the engine layer's
// environment cache builds through.
func BuildEnv(inst *dataset.Instance, opts Options) (*mdp.Env, error) {
	hard, rc, err := envConfig(inst, opts)
	if err != nil {
		return nil, err
	}
	return mdp.NewEnvWithLimits(inst.Catalog, hard, inst.Soft, rc, budgetFor(inst, hard),
		mdp.Limits{DistMatrixMax: opts.DistMatrixMax})
}

// EnvKey returns a canonical key identifying the environment that
// BuildEnv would construct for (instance, options): the instance kind
// plus the resolved hard constraints and reward configuration. The key
// deliberately omits the catalog — callers caching environments across
// instances must scope it by the catalog fingerprint.
func EnvKey(inst *dataset.Instance, opts Options) (string, error) {
	hard, rc, err := envConfig(inst, opts)
	if err != nil {
		return "", err
	}
	// DistMatrixMax is part of the key: the limit selects the distance
	// representation, so environments built under different limits must
	// not be shared.
	return fmt.Sprintf("%d|%+v|%+v|dm%d", inst.Kind, hard, rc, opts.DistMatrixMax), nil
}

// NewWithEnv is New with a prebuilt environment — typically one shared
// through the engine layer's cache. The environment must have been built
// by BuildEnv for an equivalent (instance, options) pair; a catalog-size
// mismatch is rejected, finer divergence is the caller's contract.
func NewWithEnv(inst *dataset.Instance, opts Options, env *mdp.Env) (*Planner, error) {
	_, rc, err := envConfig(inst, opts)
	if err != nil {
		return nil, err
	}
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if env.NumItems() != inst.Catalog.Len() {
		return nil, fmt.Errorf("core: environment over %d items, catalog has %d",
			env.NumItems(), inst.Catalog.Len())
	}
	d := inst.Defaults

	startID := inst.DefaultStart
	if opts.Start != "" {
		startID = opts.Start
	}
	start, ok := inst.Catalog.Index(startID)
	if !ok {
		return nil, fmt.Errorf("core: start item %q not in catalog", startID)
	}

	sc := sarsa.Config{
		Episodes:       d.Episodes,
		Alpha:          d.Alpha,
		Gamma:          d.Gamma,
		Start:          start,
		Selection:      opts.Selection,
		Algorithm:      opts.Algorithm,
		Explore:        opts.Explore,
		DisableExplore: opts.DisableExplore,
		Seed:           opts.Seed,
		Workers:        opts.TrainWorkers,
		DenseQMax:      opts.DenseQMax,
		Init:           opts.InitQ,
		OnEpisode:      opts.OnEpisode,
	}
	if opts.Episodes != 0 {
		sc.Episodes = opts.Episodes
	}
	if opts.Alpha != 0 {
		sc.Alpha = opts.Alpha
	}
	if opts.HasGamma || opts.Gamma != 0 {
		sc.Gamma = opts.Gamma
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	return &Planner{inst: inst, env: env, rewardCfg: rc, sarsaCfg: sc}, nil
}

// budgetFor derives the trajectory budget H from the instance kind
// (§III-A): item-count for courses, visitation time for trips.
func budgetFor(inst *dataset.Instance, hard constraints.Hard) mdp.Budget {
	if inst.Kind == dataset.TripPlanning {
		return mdp.TimeBudget{Hours: hard.Credits, MaxItems: hard.Length()}
	}
	return mdp.CountBudget{H: hard.Length()}
}

// Instance returns the planner's dataset instance.
func (p *Planner) Instance() *dataset.Instance { return p.inst }

// Env returns the planner's MDP environment.
func (p *Planner) Env() *mdp.Env { return p.env }

// RewardConfig returns the effective Equation 2 configuration.
func (p *Planner) RewardConfig() reward.Config { return p.rewardCfg }

// SarsaConfig returns the effective learner configuration.
func (p *Planner) SarsaConfig() sarsa.Config { return p.sarsaCfg }

// Learn runs the learning phase. It may be called again to relearn (e.g.
// after option changes via a new Planner); the latest result wins.
func (p *Planner) Learn() error {
	return p.LearnContext(context.Background())
}

// LearnContext is Learn under a context deadline. When the context
// expires mid-run, the learner checkpoints: the best-so-far policy is
// installed and Partial reports true — the deadline produced a degraded
// policy, not a failure. A context dead before the first episode is an
// error and leaves any previous result in place.
func (p *Planner) LearnContext(ctx context.Context) error {
	res, err := sarsa.LearnContext(ctx, p.env, p.sarsaCfg)
	if err != nil {
		return err
	}
	p.result = res
	return nil
}

// Learned reports whether a policy is available.
func (p *Planner) Learned() bool { return p.result != nil }

// Partial reports whether the last Learn was checkpointed at a context
// deadline before completing its episode budget.
func (p *Planner) Partial() bool { return p.result != nil && p.result.Interrupted }

// TrainedEpisodes returns how many learning episodes the last Learn
// completed — the full budget for a complete run, fewer for one
// checkpointed at its deadline. Zero before Learn.
func (p *Planner) TrainedEpisodes() int {
	if p.result == nil {
		return 0
	}
	return p.result.EpisodesCompleted()
}

// MergeBatches returns how many deterministic merge rounds the last
// Learn ran under the parallel schedule (0 for the sequential schedule
// or before Learn).
func (p *Planner) MergeBatches() int {
	if p.result == nil {
		return 0
	}
	return p.result.MergeBatches
}

// Policy returns the learned policy, or nil before Learn.
func (p *Planner) Policy() *sarsa.Policy {
	if p.result == nil {
		return nil
	}
	return p.result.Policy
}

// SetPolicy installs an external policy (used by transfer learning). The
// policy must cover the same catalog size.
func (p *Planner) SetPolicy(pol *sarsa.Policy) error {
	if pol == nil || pol.Q == nil {
		return fmt.Errorf("core: nil policy")
	}
	if pol.Q.Size() != p.env.NumItems() {
		return fmt.Errorf("core: policy size %d vs catalog %d", pol.Q.Size(), p.env.NumItems())
	}
	p.result = &sarsa.Result{Policy: pol}
	return nil
}

// LearningCurve returns the per-episode returns of the last Learn call.
func (p *Planner) LearningCurve() []float64 {
	if p.result == nil {
		return nil
	}
	return append([]float64(nil), p.result.EpisodeReturns...)
}

// Plan recommends a sequence starting from the configured start item.
func (p *Planner) Plan() ([]int, error) {
	return p.PlanFrom(p.sarsaCfg.Start)
}

// PlanFrom recommends a sequence starting from a specific item index,
// using the guided (validity-aware) recommendation walk.
func (p *Planner) PlanFrom(start int) ([]int, error) {
	if p.result == nil {
		return nil, fmt.Errorf("core: Learn before Plan")
	}
	return p.result.Policy.RecommendGuided(p.env, start)
}

// PlanFromID is PlanFrom with an item id.
func (p *Planner) PlanFromID(id string) ([]int, error) {
	i, ok := p.inst.Catalog.Index(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown item %q", id)
	}
	return p.PlanFrom(i)
}

// PlanRaw recommends with the plain Algorithm 1 walk (no validity
// filtering) — the variant the transfer-learning study uses to surface
// "bad" outcomes.
func (p *Planner) PlanRaw(start int) ([]int, error) {
	if p.result == nil {
		return nil, fmt.Errorf("core: Learn before Plan")
	}
	return p.result.Policy.Recommend(p.env, start)
}
