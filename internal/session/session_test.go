package session_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/session"
)

func learned(t *testing.T) (*core.Planner, int) {
	t.Helper()
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{Episodes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	return p, inst.StartIndex()
}

func TestSessionSuggestAcceptComplete(t *testing.T) {
	p, start := learned(t)
	s, err := session.New(p.Env(), p.Policy(), start, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("fresh session done")
	}
	if got := s.PlanIDs(); len(got) != 1 || got[0] != "CS 675" {
		t.Fatalf("initial plan = %v", got)
	}

	sug := s.Suggestions()
	if len(sug) == 0 || len(sug) > 3 {
		t.Fatalf("suggestions = %d", len(sug))
	}
	for i := 1; i < len(sug); i++ {
		if sug[i-1].Tier > sug[i].Tier {
			t.Fatalf("suggestions out of tier order: %+v", sug)
		}
	}
	if err := s.Accept(sug[0].ID); err != nil {
		t.Fatal(err)
	}
	if len(s.Plan()) != 2 {
		t.Fatalf("plan length after accept = %d", len(s.Plan()))
	}

	full := s.AutoComplete()
	if len(full) != 10 {
		t.Fatalf("auto-completed plan = %d items", len(full))
	}
	if !s.Done() {
		t.Fatal("session not done after auto-complete")
	}
	if !constraints.Satisfies(p.Env().Catalog(), full, p.Env().Hard()) {
		t.Fatalf("interactive plan violates constraints: %v",
			p.Env().Catalog().SequenceIDs(full))
	}
}

func TestSessionRejectIsHonored(t *testing.T) {
	p, start := learned(t)
	s, _ := session.New(p.Env(), p.Policy(), start, 5)

	first := s.Suggestions()
	if len(first) == 0 {
		t.Fatal("no suggestions")
	}
	veto := first[0].ID
	if err := s.Reject(veto); err != nil {
		t.Fatal(err)
	}
	for _, sug := range s.Suggestions() {
		if sug.ID == veto {
			t.Fatalf("rejected %q still suggested", veto)
		}
	}
	full := s.AutoComplete()
	for _, idx := range full {
		if p.Env().Catalog().At(idx).ID == veto {
			t.Fatalf("rejected %q in auto-completed plan", veto)
		}
	}
	if got := s.Rejected(); len(got) != 1 || got[0] != veto {
		t.Fatalf("Rejected() = %v", got)
	}
}

func TestSessionErrors(t *testing.T) {
	p, start := learned(t)
	if _, err := session.New(p.Env(), nil, start, 3); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := session.New(p.Env(), &sarsa.Policy{}, start, 3); err == nil {
		t.Fatal("empty policy accepted")
	}
	if _, err := session.New(p.Env(), p.Policy(), -1, 3); err == nil {
		t.Fatal("bad start accepted")
	}

	s, _ := session.New(p.Env(), p.Policy(), start, 3)
	if err := s.Accept("GHOST"); err == nil {
		t.Fatal("unknown accept allowed")
	}
	if err := s.Reject("GHOST"); err == nil {
		t.Fatal("unknown reject allowed")
	}
	// Accepting the start item again must fail.
	if err := s.Accept("CS 675"); err == nil {
		t.Fatal("duplicate accept allowed")
	}
	// After completion, accepts fail and suggestions dry up.
	s.AutoComplete()
	if err := s.Accept("CS 683"); err == nil {
		t.Fatal("accept after completion allowed")
	}
	if sug := s.Suggestions(); len(sug) != 0 {
		t.Fatalf("suggestions after completion: %v", sug)
	}
}

func TestSessionDefaultK(t *testing.T) {
	p, start := learned(t)
	s, err := session.New(p.Env(), p.Policy(), start, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Suggestions()); got != 3 {
		t.Fatalf("default k suggestions = %d, want 3", got)
	}
}

func TestSessionManualPlanScores(t *testing.T) {
	// A user who always follows the first suggestion reproduces the
	// guided walk's plan exactly.
	p, start := learned(t)
	s, _ := session.New(p.Env(), p.Policy(), start, 1)
	for !s.Done() {
		sug := s.Suggestions()
		if len(sug) == 0 {
			break
		}
		if err := s.Accept(sug[0].ID); err != nil {
			t.Fatal(err)
		}
	}
	want, err := p.PlanFrom(start)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Plan()
	if len(got) != len(want) {
		t.Fatalf("interactive %v vs guided %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("interactive %v vs guided %v", got, want)
		}
	}
}
