// Package session implements interactive plan construction (§IV-F: the
// learned policy recommends fast enough "to make interactive
// recommendations", and the paper's lineage includes interactive itinerary
// planning). A Session alternates between the planner and a human: the
// planner ranks the next candidates, the human accepts one, rejects some,
// or lets the planner auto-complete the rest of the plan.
package session

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/sarsa"
)

// Suggestion is one proposed next item.
type Suggestion struct {
	// Index is the catalog index; ID the item id.
	Index int
	ID    string
	// Tier is the guided-walk tier (1 = fully valid … 4 = merely
	// steppable); Reward and Q are the ranking facts.
	Tier   int
	Reward float64
	Q      float64
}

// Session is one interactive planning dialogue.
type Session struct {
	env      *mdp.Env
	policy   *sarsa.Policy
	ep       *mdp.Episode
	rejected map[int]bool
	k        int
}

// New starts a session at the given item with k suggestions per round.
func New(env *mdp.Env, policy *sarsa.Policy, start, k int) (*Session, error) {
	if policy == nil || policy.Q == nil {
		return nil, fmt.Errorf("session: nil policy")
	}
	if policy.Q.Size() != env.NumItems() {
		return nil, fmt.Errorf("session: policy size %d vs catalog %d", policy.Q.Size(), env.NumItems())
	}
	if k <= 0 {
		k = 3
	}
	ep, err := env.Start(start)
	if err != nil {
		return nil, err
	}
	return &Session{
		env:      env,
		policy:   policy,
		ep:       ep,
		rejected: make(map[int]bool),
		k:        k,
	}, nil
}

// Plan returns the items chosen so far.
func (s *Session) Plan() []int { return s.ep.Sequence() }

// PlanIDs returns the chosen item ids.
func (s *Session) PlanIDs() []string {
	return s.env.Catalog().SequenceIDs(s.ep.Sequence())
}

// Done reports whether the trajectory budget is exhausted.
func (s *Session) Done() bool { return s.ep.Done() }

// Credits returns the credits/hours spent so far.
func (s *Session) Credits() float64 { return s.ep.Credits() }

// Rejected returns the ids the user has vetoed.
func (s *Session) Rejected() []string {
	var out []string
	for idx := range s.rejected {
		out = append(out, s.env.Catalog().At(idx).ID)
	}
	return out
}

// exclude is the rejection mask.
func (s *Session) exclude(a int) bool { return s.rejected[a] }

// Suggestions ranks the next candidates: the guided walk's preference
// order, skipping rejected items.
func (s *Session) Suggestions() []Suggestion {
	ranked := s.policy.RankActions(s.env, s.ep, s.k, s.exclude)
	out := make([]Suggestion, len(ranked))
	for i, r := range ranked {
		out[i] = Suggestion{
			Index:  r.Item,
			ID:     s.env.Catalog().At(r.Item).ID,
			Tier:   r.Tier,
			Reward: r.Reward,
			Q:      r.Q,
		}
	}
	return out
}

// Accept adds the item to the plan.
func (s *Session) Accept(id string) error {
	idx, ok := s.env.Catalog().Index(id)
	if !ok {
		return fmt.Errorf("session: unknown item %q", id)
	}
	if s.ep.Done() {
		return fmt.Errorf("session: plan is complete")
	}
	if !s.ep.CanStep(idx) {
		return fmt.Errorf("session: %q cannot be added (already chosen or over budget)", id)
	}
	s.ep.Step(idx)
	return nil
}

// Reject vetoes an item for the remainder of the session.
func (s *Session) Reject(id string) error {
	idx, ok := s.env.Catalog().Index(id)
	if !ok {
		return fmt.Errorf("session: unknown item %q", id)
	}
	s.rejected[idx] = true
	return nil
}

// AutoComplete lets the planner finish the plan with the guided walk,
// honoring every rejection, and returns the full sequence.
func (s *Session) AutoComplete() []int {
	for !s.ep.Done() {
		e, ok := s.policy.NextGuided(s.env, s.ep, s.exclude)
		if !ok {
			break
		}
		s.ep.Step(e)
	}
	return s.Plan()
}
