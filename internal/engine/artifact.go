package engine

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/sarsa"
)

// artifactLoadFailures counts failed artifact restores process-wide —
// truncated or corrupt gob streams, fingerprint mismatches, out-of-range
// payloads — surfaced as artifact_load_failures_total in /api/metrics. A
// climbing figure means a repository (or an operator's import pipeline)
// is feeding the daemon bad artifacts.
var artifactLoadFailures atomic.Int64

// ArtifactLoadFailures reports the cumulative failed-restore count.
func ArtifactLoadFailures() int64 { return artifactLoadFailures.Load() }

// noteLoadFailure counts err (when non-nil) as a failed artifact load
// and passes it through.
func noteLoadFailure(err error) error {
	if err != nil {
		artifactLoadFailures.Add(1)
	}
	return err
}

const (
	// artifactMagic guards against feeding arbitrary gob streams (or the
	// pre-registry raw policy format) into Load.
	artifactMagic = "rlplanner-policy"
	// ArtifactVersion is the current artifact format version. Readers
	// accept any version up to this one; newer versions are refused with
	// an explicit error instead of a misdecode. v2 added the training
	// provenance fields (Episodes, Degraded, WarmFrom, WarmDistance);
	// v3 added the sparse coordinate payload (QS/QE/QV) for policies
	// whose tables exceed the dense threshold. Gob leaves absent fields
	// zero when decoding an older stream, and dense v3 artifacts are
	// byte-compatible with v2 readers' expectations for every catalog a
	// v2 writer could produce.
	ArtifactVersion = 3
)

// artifact is the on-disk form of a Policy: a header identifying the
// format, engine and training catalog, plus the engine-specific payload
// (the flattened Q table for tabular engines, the tie-break seed for
// procedural ones).
type artifact struct {
	Magic       string
	Version     int
	Engine      string
	Instance    string
	Fingerprint string
	Items       int
	Seed        int64
	// Q is the flattened dense table; QS/QE/QV are the sorted visited-cell
	// coordinates of a sparse-backed one. Tabular artifacts carry exactly
	// one of the two payloads.
	Q   []float64
	QS  []int32
	QE  []int32
	QV  []float64
	IDs []string
	// Episodes records how many learning episodes completed — for a
	// partial checkpoint, how far training got before its deadline.
	Episodes int
	// Degraded preserves the policy's degradation marker (e.g.
	// DegradedPartial) across save/load.
	Degraded string
	// WarmFrom/WarmDistance record warm-start provenance for derived
	// policies ("" / 0 for cold-trained ones).
	WarmFrom     string
	WarmDistance float64
}

// artifactFor snapshots a policy. values is nil for procedural engines.
func artifactFor(m meta, values *sarsa.Policy, seed int64) artifact {
	a := artifact{
		Magic:        artifactMagic,
		Version:      ArtifactVersion,
		Engine:       m.engine,
		Instance:     m.instance,
		Fingerprint:  m.fp,
		Seed:         seed,
		Episodes:     m.episodes,
		Degraded:     m.degraded,
		WarmFrom:     m.warmFrom,
		WarmDistance: m.warmDistance,
	}
	if values != nil {
		n := values.Q.Size()
		a.Items = n
		a.IDs = values.IDs
		if values.Q.IsDense() {
			a.Q = make([]float64, 0, n*n)
			for s := 0; s < n; s++ {
				a.Q = append(a.Q, values.Q.Row(s)...)
			}
		} else {
			// Sparse payload: artifact size follows the visited cells, so a
			// 100k-item policy saves in megabytes instead of an 80 GB flat
			// table that could never be materialized to begin with.
			values.Q.EachStored(func(s, e int, v float64) {
				a.QS = append(a.QS, int32(s))
				a.QE = append(a.QE, int32(e))
				a.QV = append(a.QV, v)
			})
		}
	}
	return a
}

func saveArtifact(w io.Writer, a artifact) error {
	return gob.NewEncoder(w).Encode(a)
}

// decodeArtifact reads and sanity-checks an artifact header against the
// target instance.
func decodeArtifact(r io.Reader, inst *dataset.Instance) (artifact, error) {
	var a artifact
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		// A bare gob error ("unexpected EOF") tells an operator nothing;
		// name the format and the version range this reader understands so
		// a truncated or foreign file is diagnosable from the message.
		return a, fmt.Errorf("engine: decode policy artifact (format v1-v%d): %w", ArtifactVersion, err)
	}
	if a.Magic != artifactMagic {
		return a, fmt.Errorf("engine: not an RL-Planner policy artifact (magic %q)", a.Magic)
	}
	if a.Version > ArtifactVersion {
		return a, fmt.Errorf("engine: policy artifact format v%d is newer than supported v%d — upgrade the reader",
			a.Version, ArtifactVersion)
	}
	if fp := Fingerprint(inst); a.Fingerprint != fp {
		return a, fmt.Errorf("engine: policy was trained on %q (catalog fingerprint %s) but target instance %q has fingerprint %s — refusing to replay it against a different catalog",
			a.Instance, a.Fingerprint, inst.Name, fp)
	}
	return a, nil
}

// restoreValues rebuilds the Q-table policy of a tabular artifact,
// restoring the representation it was saved from.
func restoreValues(a artifact, inst *dataset.Instance) (*sarsa.Policy, error) {
	if a.Items != inst.Catalog.Len() {
		return nil, fmt.Errorf("engine: policy covers %d items, instance %q has %d", a.Items, inst.Name, inst.Catalog.Len())
	}
	if len(a.QS)+len(a.QE)+len(a.QV) > 0 {
		if a.Items <= 0 || len(a.Q) != 0 || len(a.QS) != len(a.QE) || len(a.QS) != len(a.QV) {
			return nil, fmt.Errorf("engine: corrupt %s artifact (n=%d, %d/%d/%d coordinates)",
				a.Engine, a.Items, len(a.QS), len(a.QE), len(a.QV))
		}
		q := qtable.NewWithDenseMax(a.Items, 1) // keep the trained sparse form
		for i := range a.QS {
			s, e := int(a.QS[i]), int(a.QE[i])
			if s < 0 || s >= a.Items || e < 0 || e >= a.Items {
				return nil, fmt.Errorf("engine: corrupt %s artifact: cell (%d,%d) out of range [0,%d)",
					a.Engine, s, e, a.Items)
			}
			q.Set(s, e, a.QV[i])
		}
		return &sarsa.Policy{Q: q, IDs: a.IDs}, nil
	}
	if a.Items <= 0 || len(a.Q) != a.Items*a.Items {
		return nil, fmt.Errorf("engine: corrupt %s artifact (n=%d, %d values)", a.Engine, a.Items, len(a.Q))
	}
	q := qtable.NewWithDenseMax(a.Items, a.Items) // keep the saved dense form
	for s := 0; s < a.Items; s++ {
		for e := 0; e < a.Items; e++ {
			q.Set(s, e, a.Q[s*a.Items+e])
		}
	}
	return &sarsa.Policy{Q: q, IDs: a.IDs}, nil
}

// Load restores a policy artifact against an instance. opts rebind the
// environment (reward configuration, start item, thresholds) exactly as
// they would for training; the learned values themselves come from the
// artifact. Procedural engines (EDA, OMEGA, gold) carry no values — their
// construction is re-run, seeded from the artifact.
func Load(r io.Reader, inst *dataset.Instance, opts core.Options) (Policy, error) {
	p, err := loadArtifact(r, inst, opts)
	return p, noteLoadFailure(err)
}

func loadArtifact(r io.Reader, inst *dataset.Instance, opts core.Options) (Policy, error) {
	a, err := decodeArtifact(r, inst)
	if err != nil {
		return nil, err
	}
	d, err := lookup(a.Engine)
	if err != nil {
		return nil, err
	}
	if !d.Tabular {
		opts.Seed = a.Seed
		return d.Train(context.Background(), inst, opts)
	}
	values, err := restoreValues(a, inst)
	if err != nil {
		return nil, err
	}
	// Imported artifacts serve immediately: compile the action order now
	// and rebind against the cached environment rather than a fresh one.
	values.Compiled()
	p, err := newPlanner(context.Background(), inst, opts)
	if err != nil {
		return nil, err
	}
	m := metaFor(d.Name, inst, p.Env().Hard())
	m.episodes = a.Episodes
	m.degraded = a.Degraded
	m.warmFrom = a.WarmFrom
	m.warmDistance = a.WarmDistance
	return &valuePolicy{
		meta:   m,
		env:    p.Env(),
		start:  p.SarsaConfig().Start,
		values: values,
	}, nil
}

// SaveValues writes a bare Q-table policy as an artifact of the named
// engine — the bridge for callers that hold a *sarsa.Policy directly
// (the public Planner facade, transfer learning).
func SaveValues(w io.Writer, engineName string, inst *dataset.Instance, values *sarsa.Policy) error {
	if values == nil || values.Q == nil {
		return fmt.Errorf("engine: nil policy values")
	}
	d, err := lookup(engineName)
	if err != nil {
		return err
	}
	if !d.Tabular {
		return fmt.Errorf("engine %s: procedural policies carry no values", d.Name)
	}
	return saveArtifact(w, artifactFor(metaFor(d.Name, inst, inst.Hard), values, 0))
}

// LoadValues reads an artifact and returns its raw Q-table policy after
// the fingerprint check, for callers that manage their own environment.
// It refuses procedural artifacts.
func LoadValues(r io.Reader, inst *dataset.Instance) (*sarsa.Policy, error) {
	p, err := loadValues(r, inst)
	return p, noteLoadFailure(err)
}

func loadValues(r io.Reader, inst *dataset.Instance) (*sarsa.Policy, error) {
	a, err := decodeArtifact(r, inst)
	if err != nil {
		return nil, err
	}
	d, err := lookup(a.Engine)
	if err != nil {
		return nil, err
	}
	if !d.Tabular {
		return nil, fmt.Errorf("engine %s: artifact is procedural, it carries no Q values", d.Name)
	}
	return restoreValues(a, inst)
}
