package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/resilience"
)

// TestPartialSarsaMidTraining is the deadline-checkpoint acceptance
// case: SARSA interrupted halfway through its episodes must return a
// usable partial policy — marked degraded, but whose recommendation
// still passes the Theorem-1 hard-constraint validator.
func TestPartialSarsaMidTraining(t *testing.T) {
	inst := univ.Univ1DSCT()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := core.Options{Episodes: 500, Seed: 1}
	opts.OnEpisode = func(i int) {
		if i == 249 { // cancel at 50% of the episode budget
			cancel()
		}
	}
	pol, err := Train(ctx, "sarsa", inst, opts)
	if err != nil {
		t.Fatalf("interrupted training must checkpoint, not fail: %v", err)
	}
	if Degradation(pol) != DegradedPartial {
		t.Fatalf("Degradation = %q, want %q", Degradation(pol), DegradedPartial)
	}
	vp, ok := pol.(ValuePolicy)
	if !ok {
		t.Fatal("sarsa policy must expose its values")
	}
	if got := len(vp.LearningCurve()); got != 250 {
		t.Fatalf("checkpointed after %d episodes, want 250", got)
	}
	seq, err := pol.Recommend(DefaultStart)
	if err != nil {
		t.Fatalf("partial policy recommend: %v", err)
	}
	if len(seq) == 0 {
		t.Fatal("partial policy produced an empty plan")
	}
	if vs := constraints.Check(inst.Catalog, seq, pol.Hard()); len(vs) != 0 {
		t.Fatalf("partial policy violates hard constraints: %v", vs)
	}
}

// TestTrainBudgetCheckpointsSarsa drives the deadline through
// Options.TrainBudget instead of an explicit cancel: an episode budget
// far beyond the wall-clock budget must yield a partial policy.
func TestTrainBudgetCheckpointsSarsa(t *testing.T) {
	inst := univ.Univ1DSCT()
	opts := core.Options{Episodes: 50_000_000, Seed: 1, TrainBudget: 50 * time.Millisecond}
	start := time.Now()
	pol, err := Train(context.Background(), "sarsa", inst, opts)
	if err != nil {
		t.Fatalf("budgeted training must checkpoint, not fail: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("training ran %s past a 50ms budget", elapsed)
	}
	if Degradation(pol) != DegradedPartial {
		t.Fatalf("Degradation = %q, want %q", Degradation(pol), DegradedPartial)
	}
	if _, err := pol.Recommend(DefaultStart); err != nil {
		t.Fatalf("partial policy recommend: %v", err)
	}
}

// TestEnginePanicBecomesTypedError pins the registry's isolation
// boundary: a panicking solver surfaces as *resilience.PanicError with
// the op and panic value intact, never as an unwound goroutine.
func TestEnginePanicBecomesTypedError(t *testing.T) {
	Register(Descriptor{
		Name: "panicker",
		Doc:  "test engine that always panics",
		Train: func(context.Context, *dataset.Instance, core.Options) (Policy, error) {
			panic("corrupted Q table")
		},
	})
	t.Cleanup(func() { Unregister("panicker") })

	_, err := Train(context.Background(), "panicker", univ.Univ1DSCT(), core.Options{})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *resilience.PanicError", err, err)
	}
	if pe.Op != "engine panicker" || pe.Value != "corrupted Q table" {
		t.Fatalf("PanicError = {Op: %q, Value: %v}", pe.Op, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError should carry the recovered stack")
	}
}

// TestUnregisterScopesTestEngines pins the lifecycle the fault-injection
// harness relies on: a test engine (with aliases) can be registered,
// resolved, removed with every alias, and re-registered without
// tripping the duplicate panic. Production names are untouched.
func TestUnregisterScopesTestEngines(t *testing.T) {
	base := Names()
	reg := func() {
		Register(Descriptor{
			Name:    "scoped",
			Aliases: []string{"scoped-alias"},
			Doc:     "test engine",
			Train: func(context.Context, *dataset.Instance, core.Options) (Policy, error) {
				return nil, errors.New("unused")
			},
		})
	}
	reg()
	if got, err := Canonical("scoped-alias"); err != nil || got != "scoped" {
		t.Fatalf("Canonical(scoped-alias) = %q, %v", got, err)
	}

	Unregister("scoped-alias") // removing via an alias removes all names
	if _, err := Canonical("scoped"); err == nil {
		t.Fatal("scoped should be gone after Unregister")
	}
	if _, err := Canonical("scoped-alias"); err == nil {
		t.Fatal("scoped-alias should be gone after Unregister")
	}
	if got := Names(); !reflect.DeepEqual(got, base) {
		t.Fatalf("Names() = %v, want %v", got, base)
	}

	reg() // re-registration after Unregister must not panic
	Unregister("scoped")
	Unregister("scoped") // unknown names are a no-op
}
