package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTier is an in-memory Tier for protocol tests.
type fakeTier struct {
	mu          sync.Mutex
	entries     map[string]int
	quarantined map[string]bool
	claimed     map[string]bool
	arbErr      error // TryClaim error when set
	denyClaim   bool  // TryClaim reports contended when set
	puts, gets  int
}

func newFakeTier() *fakeTier {
	return &fakeTier{
		entries:     map[string]int{},
		quarantined: map[string]bool{},
		claimed:     map[string]bool{},
	}
}

func (t *fakeTier) Get(key string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gets++
	v, ok := t.entries[key]
	return v, ok
}

func (t *fakeTier) Put(key string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.puts++
	t.entries[key] = v
}

func (t *fakeTier) Quarantine(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.quarantined[key] = true
	delete(t.entries, key)
}

func (t *fakeTier) TryClaim(key string) (func(), bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.arbErr != nil {
		return nil, false, t.arbErr
	}
	if t.denyClaim || t.claimed[key] {
		return nil, false, nil
	}
	t.claimed[key] = true
	return func() {
		t.mu.Lock()
		delete(t.claimed, key)
		t.mu.Unlock()
	}, true, nil
}

func TestTierHitSkipsTraining(t *testing.T) {
	ft := newFakeTier()
	ft.entries["k"] = 42
	s := NewStore[int](4)
	s.AttachTier(ft)
	trained := 0
	v, ran, err := s.GetOrTrain(context.Background(), "k", func() (int, error) {
		trained++
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("GetOrTrain = %d, %v", v, err)
	}
	if trained != 0 {
		t.Fatalf("tier hit still trained %d times", trained)
	}
	_ = ran // the leader "ran" the resolution, just not a training
	// The tier hit fills the memory LRU: the next lookup is a pure cache
	// hit that never touches the tier.
	gets := ft.gets
	if v, ok := s.Cached("k"); !ok || v != 42 {
		t.Fatalf("Cached after tier fill = %d, %v", v, ok)
	}
	if ft.gets != gets {
		t.Fatal("cached read consulted the tier")
	}
}

func TestTierMissTrainsAndWritesThrough(t *testing.T) {
	ft := newFakeTier()
	s := NewStore[int](4)
	s.AttachTier(ft)
	v, _, err := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("GetOrTrain = %d, %v", v, err)
	}
	if ft.entries["k"] != 7 || ft.puts != 1 {
		t.Fatalf("write-through missing: entries=%v puts=%d", ft.entries, ft.puts)
	}
	if len(ft.claimed) != 0 {
		t.Fatalf("claim not released: %v", ft.claimed)
	}
}

func TestTierTrainFailureReleasesClaimWithoutPut(t *testing.T) {
	ft := newFakeTier()
	s := NewStore[int](4)
	s.AttachTier(ft)
	boom := errors.New("boom")
	if _, _, err := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ft.puts != 0 {
		t.Fatal("failed training wrote through")
	}
	if len(ft.claimed) != 0 {
		t.Fatalf("claim leaked after failure: %v", ft.claimed)
	}
}

// TestTierContendedWaitsForArtifact: while another "process" holds the
// claim, the store polls; when the trainer's artifact lands in the
// tier, the waiter serves it without ever training.
func TestTierContendedWaitsForArtifact(t *testing.T) {
	ft := newFakeTier()
	ft.denyClaim = true
	s := NewStore[int](4)
	s.AttachTier(ft)
	go func() {
		time.Sleep(60 * time.Millisecond) // a couple of poll rounds
		ft.Put("k", 99)
	}()
	trained := 0
	v, _, err := s.GetOrTrain(context.Background(), "k", func() (int, error) {
		trained++
		return 0, nil
	})
	if err != nil || v != 99 {
		t.Fatalf("GetOrTrain = %d, %v", v, err)
	}
	if trained != 0 {
		t.Fatal("waiter trained despite remote artifact")
	}
}

// TestTierContendedHonorsContext: a waiter whose context dies while the
// remote trainer holds the claim returns the context error instead of
// spinning.
func TestTierContendedHonorsContext(t *testing.T) {
	ft := newFakeTier()
	ft.denyClaim = true
	s := NewStore[int](4)
	s.AttachTier(ft)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := s.GetOrTrain(ctx, "k", func() (int, error) { return 1, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want deadline exceeded", err)
	}
}

// TestTierArbitrationErrorDegradesToLocalTraining: a tier that cannot
// arbitrate (disk fault) must not block serving — the store trains
// locally and still attempts the write-through.
func TestTierArbitrationErrorDegradesToLocalTraining(t *testing.T) {
	ft := newFakeTier()
	ft.arbErr = errors.New("disk on fire")
	s := NewStore[int](4)
	s.AttachTier(ft)
	v, _, err := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("GetOrTrain = %d, %v", v, err)
	}
	if ft.entries["k"] != 5 {
		t.Fatal("write-through skipped on arbitration failure")
	}
}

// TestRemoveQuarantinesTier: evicting a malformed policy must also
// invalidate the durable entry, or it reloads forever on the next miss.
func TestRemoveQuarantinesTier(t *testing.T) {
	ft := newFakeTier()
	ft.entries["k"] = 13
	s := NewStore[int](4)
	s.AttachTier(ft)
	if v, _, _ := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 0, nil }); v != 13 {
		t.Fatal("setup: tier entry not served")
	}
	s.Remove("k")
	if !ft.quarantined["k"] {
		t.Fatal("Remove did not quarantine the tier entry")
	}
	// The next miss retrains instead of reloading the bad artifact.
	trained := 0
	v, _, err := s.GetOrTrain(context.Background(), "k", func() (int, error) {
		trained++
		return 21, nil
	})
	if err != nil || v != 21 || trained != 1 {
		t.Fatalf("post-quarantine GetOrTrain = %d (trained %d), %v", v, trained, err)
	}
}
