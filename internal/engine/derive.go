package engine

import (
	"context"
	"fmt"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/transfer"
)

// DeriveStats reports what a warm-start derivation did.
type DeriveStats struct {
	// Source names the instance the source policy was trained on.
	Source string
	// Distance is the transfer mapping's warm-start distance in [0, 1]:
	// the fraction of target items without an exact-id source match.
	Distance float64
	// ColdEpisodes is the episode budget a cold training run would have
	// used; WarmEpisodes is the distance-scaled budget the derivation
	// actually trained.
	ColdEpisodes int
	WarmEpisodes int
}

// Derive trains a policy for inst by warm-starting from an existing
// policy instead of from zeros: the source Q table is re-indexed onto
// the target catalog through the transfer mapping (exact ids first,
// topic similarity second), training seeds from the mapped table, and
// the episode budget shrinks by the warm-start distance
// (transfer.WarmBudget) — a k-item catalog change retrains roughly k/n
// of the cold budget. The derived artifact records its provenance
// (WarmStartedPolicy).
//
// The source must be a tabular policy (ValuePolicy). Derivation keeps
// the source's TD engine when it is one of the Algorithm 1 learners and
// falls back to SARSA otherwise.
func Derive(ctx context.Context, src Policy, inst *dataset.Instance, opts core.Options) (Policy, DeriveStats, error) {
	var stats DeriveStats
	vp, ok := src.(ValuePolicy)
	if !ok || vp.Values() == nil {
		return nil, stats, fmt.Errorf("engine: derive needs a tabular source policy, %s is procedural", src.Engine())
	}
	if inst == nil {
		return nil, stats, fmt.Errorf("engine: derive: nil target instance")
	}

	engineName := src.Engine()
	if engineName != "sarsa" && engineName != "qlearning" {
		engineName = "sarsa"
	}

	mapped, m, err := transfer.Map(vp.Values(), vp.Env().Catalog(), inst.Catalog)
	if err != nil {
		return nil, stats, fmt.Errorf("engine: derive: %w", err)
	}

	cold := opts.Episodes
	if cold <= 0 {
		cold = inst.Defaults.Episodes
	}
	stats = DeriveStats{
		Source:       src.Instance(),
		Distance:     m.Distance(),
		ColdEpisodes: cold,
		WarmEpisodes: transfer.WarmBudget(cold, m.Distance()),
	}

	opts.Episodes = stats.WarmEpisodes
	opts.InitQ = mapped.Q
	pol, err := Train(ctx, engineName, inst, opts)
	if err != nil {
		return nil, stats, err
	}
	if v, ok := pol.(*valuePolicy); ok {
		v.warmFrom = src.Instance()
		v.warmDistance = stats.Distance
	}
	return pol, stats, nil
}
