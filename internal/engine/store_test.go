package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoreClockEviction pins the CLOCK approximate-LRU contract that
// replaced the exact LRU list: a full store evicts an entry whose
// access bit is clear, and a Cached hit — one atomic store, no lock —
// grants its entry a second chance over untouched neighbours.
func TestStoreClockEviction(t *testing.T) {
	s := NewStore[int](2)
	s.Add("a", 1)
	s.Add("b", 2)
	s.Add("c", 3) // evicts a: neither a nor b was ever read, a is first in ring order
	if _, ok := s.Cached("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := s.Cached("b"); !ok || v != 2 {
		t.Fatalf("b = %d, %v", v, ok)
	}
	got := s.Keys()
	sort.Strings(got)
	if want := []string{"b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	// b's access bit is set (the hit above); the sweep spends it and
	// evicts the untouched c.
	s.Add("d", 4)
	if _, ok := s.Cached("c"); ok {
		t.Fatal("c should have been evicted: b held an access bit, c did not")
	}
	if _, ok := s.Cached("b"); !ok {
		t.Fatal("b lost despite its access bit")
	}
	if s.Len() != 2 {
		t.Fatalf("Len() = %d", s.Len())
	}
}

// TestStoreCachedHitNoAlloc pins the contention-free hit path's other
// half: a warm Cached read allocates nothing — no list nodes, no
// interface boxing, nothing for the GC to chew on at 6 figures of req/s.
func TestStoreCachedHitNoAlloc(t *testing.T) {
	// Sized well above the key count: shard capacity is enforced per
	// stripe, so a store near its bound could shed a setup key on an
	// unlucky hash skew and turn the warm premise flaky.
	s := NewStore[*int](1024)
	v := 42
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		s.Add(keys[i], &v)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		p, ok := s.Cached(keys[i%len(keys)])
		if !ok || *p != 42 {
			t.Fatal("miss on a warm key")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Cached hit allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStoreShardedBound fills a sharded store (capacity large enough to
// stripe) far past its bound with random-ish keys and verifies the
// global capacity holds and recently inserted keys remain reachable.
func TestStoreShardedBound(t *testing.T) {
	const max = 128 // DefaultStoreSize: stripes into multiple shards
	s := NewStore[int](max)
	if len(s.shards) < 2 {
		t.Fatalf("expected a striped store at max=%d, got %d shard(s)", max, len(s.shards))
	}
	for i := 0; i < 10*max; i++ {
		s.Add(fmt.Sprintf("k%d", i), i)
	}
	if n := s.Len(); n > max {
		t.Fatalf("Len() = %d exceeds the %d bound", n, max)
	}
	// The very last insert can never be the immediate victim of its own
	// shard's sweep.
	if _, ok := s.Cached(fmt.Sprintf("k%d", 10*max-1)); !ok {
		t.Fatal("most recent key missing")
	}
	// Every key the store reports is actually readable.
	for _, k := range s.Keys() {
		if _, ok := s.Cached(k); !ok {
			t.Fatalf("Keys() listed %q but Cached misses it", k)
		}
	}
}

func TestStoreAddOverwrites(t *testing.T) {
	s := NewStore[int](2)
	s.Add("a", 1)
	s.Add("a", 9)
	if v, _ := s.Cached("a"); v != 9 {
		t.Fatalf("a = %d, want 9", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d", s.Len())
	}
}

// TestStoreSingleflight hammers one cold key from many goroutines:
// exactly one must train, everyone must see its value.
func TestStoreSingleflight(t *testing.T) {
	s := NewStore[int](4)
	var trains int32
	const n = 32
	var wg sync.WaitGroup
	vals := make([]int, n)
	leaders := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ran, err := s.GetOrTrain(context.Background(), "k", func() (int, error) {
				atomic.AddInt32(&trains, 1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], leaders[i] = v, ran
		}(i)
	}
	wg.Wait()
	// Every goroutine observed the single trained value. More than one
	// trainer can only happen if a follower raced ahead of the leader's
	// registration — which would double-count trains.
	if got := atomic.LoadInt32(&trains); got != 1 {
		t.Fatalf("train ran %d times, want 1", got)
	}
	var nLeaders int
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Fatalf("goroutine %d saw %d", i, vals[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Fatalf("%d goroutines report having trained, want 1", nLeaders)
	}
}

func TestStoreErrorNotCached(t *testing.T) {
	s := NewStore[int](4)
	boom := errors.New("boom")
	if _, _, err := s.GetOrTrain(context.Background(), "k", func() (int, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := s.Cached("k"); ok {
		t.Fatal("failed training must not be cached")
	}
	v, ran, err := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || !ran || v != 7 {
		t.Fatalf("retry = %d, %v, %v", v, ran, err)
	}
}

func TestStoreFollowerHonorsContext(t *testing.T) {
	s := NewStore[int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		s.GetOrTrain(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.GetOrTrain(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestStorePanicFreesFollowers pins the leader-panic path: waiting
// followers get an error instead of hanging, and the key stays trainable.
func TestStorePanicFreesFollowers(t *testing.T) {
	s := NewStore[int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		s.GetOrTrain(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			panic("trainer exploded")
		})
	}()
	<-started
	errc := make(chan error, 1)
	go func() {
		// If scheduling delays this goroutine past the leader's cleanup it
		// becomes a fresh leader; the sentinel value below distinguishes
		// the two outcomes.
		v, _, err := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 99, nil })
		if err == nil && v != 99 {
			err = fmt.Errorf("follower got %d without an error", v)
		}
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the follower reach the wait
	close(release)
	if err := <-errc; err == nil {
		t.Log("follower arrived after cleanup and retrained; panic path still verified below")
	} else if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("follower err = %v, want the aborted-training error", err)
	}
	v, ran, err := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 5, nil })
	if err != nil || !ran || v != 5 {
		t.Fatalf("post-panic retry = %d, %v, %v", v, ran, err)
	}
}

// TestStoreDistinctKeysTrainConcurrently proves per-key isolation: a
// stalled training run on one key does not serialize another key.
func TestStoreDistinctKeysTrainConcurrently(t *testing.T) {
	s := NewStore[int](4)
	aStarted := make(chan struct{})
	aRelease := make(chan struct{})
	go s.GetOrTrain(context.Background(), "a", func() (int, error) {
		close(aStarted)
		<-aRelease
		return 1, nil
	})
	<-aStarted
	v, ran, err := s.GetOrTrain(context.Background(), "b", func() (int, error) { return 2, nil })
	if err != nil || !ran || v != 2 {
		t.Fatalf("b trained under a stalled a: %d, %v, %v", v, ran, err)
	}
	close(aRelease)
}

func TestStoreKeyScaling(t *testing.T) {
	s := NewStore[string](8)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		s.Add(key, key)
	}
	if s.Len() != 8 {
		t.Fatalf("Len() = %d, want the 8-entry bound", s.Len())
	}
	if _, ok := s.Cached("k19"); !ok {
		t.Fatal("most recent key missing")
	}
}

// TestStoreRemove pins the serving layer's malformed-artifact eviction:
// Remove drops a cached value so the next request retrains, absent keys
// are a no-op, and an in-flight training run is unaffected.
func TestStoreRemove(t *testing.T) {
	s := NewStore[int](4)
	s.Add("k", 1)
	s.Remove("k")
	if _, ok := s.Cached("k"); ok {
		t.Fatal("removed key still cached")
	}
	s.Remove("absent") // no-op
	if s.Len() != 0 {
		t.Fatalf("Len() = %d", s.Len())
	}
	v, ran, err := s.GetOrTrain(context.Background(), "k", func() (int, error) { return 2, nil })
	if err != nil || !ran || v != 2 {
		t.Fatalf("retrain after Remove = %d, %v, %v", v, ran, err)
	}

	// Removing a key mid-training must not disturb the in-flight run.
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		v, _, _ := s.GetOrTrain(context.Background(), "live", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		done <- v
	}()
	<-started
	s.Remove("live")
	close(release)
	if v := <-done; v != 7 {
		t.Fatalf("in-flight training returned %d", v)
	}
}
