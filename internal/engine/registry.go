package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/resilience"
)

// TrainFunc runs one solver's training phase for a bound configuration.
type TrainFunc func(ctx context.Context, inst *dataset.Instance, opts core.Options) (Policy, error)

// Descriptor registers one solver.
type Descriptor struct {
	// Name is the canonical registry key ("sarsa", "eda", …).
	Name string
	// Aliases are alternative lookup names ("rl" for "sarsa", "vi" for
	// "valueiter", …). The empty string may alias the default engine.
	Aliases []string
	// Doc is a one-line description for discovery endpoints.
	Doc string
	// Tabular marks engines whose policies serialize their Q values;
	// procedural engines (EDA, OMEGA, gold) re-run their construction
	// when an artifact is loaded.
	Tabular bool
	// Train runs the solver.
	Train TrainFunc
}

var registry = struct {
	sync.RWMutex
	byName map[string]*Descriptor
	names  []string // canonical names, registration order
}{byName: map[string]*Descriptor{}}

// Register adds a solver to the registry. It panics on a duplicate name
// or alias — registration is an init-time wiring error, not a runtime
// condition.
func Register(d Descriptor) {
	if d.Name == "" || d.Train == nil {
		panic("engine: Register needs a name and a Train func")
	}
	registry.Lock()
	defer registry.Unlock()
	for _, key := range append([]string{d.Name}, d.Aliases...) {
		key = strings.ToLower(key)
		if _, dup := registry.byName[key]; dup {
			panic(fmt.Sprintf("engine: duplicate registration for %q", key))
		}
		dd := d
		registry.byName[key] = &dd
	}
	registry.names = append(registry.names, d.Name)
}

// Unregister removes an engine (canonical name or alias) together with
// every alias it was registered under. It exists for scoped test engines
// — the fault-injection harness registers a scriptable engine per test
// and removes it on cleanup, so repeated registrations in one binary
// never collide with Register's duplicate panic. Unknown names are a
// no-op. Production engines register in init and are never removed.
func Unregister(name string) {
	registry.Lock()
	defer registry.Unlock()
	d, ok := registry.byName[strings.ToLower(name)]
	if !ok {
		return
	}
	for _, key := range append([]string{d.Name}, d.Aliases...) {
		delete(registry.byName, strings.ToLower(key))
	}
	for i, n := range registry.names {
		if n == d.Name {
			registry.names = append(registry.names[:i], registry.names[i+1:]...)
			break
		}
	}
}

// lookup resolves a (case-insensitive) name or alias.
func lookup(name string) (*Descriptor, error) {
	registry.RLock()
	d, ok := registry.byName[strings.ToLower(name)]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return d, nil
}

// Canonical resolves a name or alias to the canonical engine name, so
// cache keys built from user input collapse "vi", "value-iteration" and
// "valueiter" onto one entry.
func Canonical(name string) (string, error) {
	d, err := lookup(name)
	if err != nil {
		return "", err
	}
	return d.Name, nil
}

// Names returns the canonical engine names, sorted.
func Names() []string {
	registry.RLock()
	out := append([]string(nil), registry.names...)
	registry.RUnlock()
	sort.Strings(out)
	return out
}

// Describe returns the registered descriptor for a name or alias.
func Describe(name string) (Descriptor, error) {
	d, err := lookup(name)
	if err != nil {
		return Descriptor{}, err
	}
	return *d, nil
}

// binding is a solver bound to one (instance, options) pair.
type binding struct {
	d    *Descriptor
	inst *dataset.Instance
	opts core.Options
}

// New binds the named engine to an instance and options. The returned
// Planner trains policies for exactly that configuration.
func New(name string, inst *dataset.Instance, opts core.Options) (Planner, error) {
	d, err := lookup(name)
	if err != nil {
		return nil, err
	}
	if inst == nil {
		return nil, fmt.Errorf("engine %s: nil instance", d.Name)
	}
	return &binding{d: d, inst: inst, opts: opts}, nil
}

func (b *binding) Engine() string { return b.d.Name }

// Train runs the solver inside the resilience boundary: the configured
// training budget (core.Options.TrainBudget) becomes a context deadline,
// and a solver panic is recovered into a typed *resilience.PanicError
// instead of unwinding into the caller — one corrupted run must poison
// one cache key, not the process.
func (b *binding) Train(ctx context.Context) (Policy, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine %s: %w", b.d.Name, err)
	}
	if b.opts.TrainBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.opts.TrainBudget)
		defer cancel()
	}
	return resilience.Guard("engine "+b.d.Name, func() (Policy, error) {
		return b.d.Train(ctx, b.inst, b.opts)
	})
}

// Train is the one-shot convenience: bind the named engine and train.
func Train(ctx context.Context, name string, inst *dataset.Instance, opts core.Options) (Policy, error) {
	p, err := New(name, inst, opts)
	if err != nil {
		return nil, err
	}
	return p.Train(ctx)
}
