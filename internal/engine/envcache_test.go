package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/mdp"
)

// TestEnvCacheSingleflightBuildsOnce hammers one cold cache key from
// many goroutines and requires exactly one build — the singleflight
// property the serving path depends on. Run under -race this also
// checks the cache's synchronization.
func TestEnvCacheSingleflightBuildsOnce(t *testing.T) {
	inst := univ.Univ1DSCT()
	const key = "test|envcache-singleflight-hammer"
	t.Cleanup(func() { envs.Remove(key) })

	var builds atomic.Int32
	const goroutines = 32
	got := make([]*mdp.Env, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			env, _, err := envs.GetOrTrain(context.Background(), key, func() (*mdp.Env, error) {
				builds.Add(1)
				return core.BuildEnv(inst, core.Options{})
			})
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = env
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("cold key built %d times under %d concurrent requests, want 1", n, goroutines)
	}
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d received a different environment than the leader", g)
		}
	}
}

// TestEnvForConcurrentMixedInstances drives EnvFor concurrently with a
// mix of instances and option sets, the access pattern of interleaved
// plan and batch requests. Every (instance, options) pair must resolve
// to one shared environment, and distinct pairs must never alias.
func TestEnvForConcurrentMixedInstances(t *testing.T) {
	type cfg struct {
		name string
		fn   func() (*mdp.Env, error)
	}
	univ1, univ2 := univ.Univ1DSCT(), univ.Univ2DS()
	tuned := core.Options{Delta: 0.7, Beta: 0.3}
	cfgs := []cfg{
		{"univ1-default", func() (*mdp.Env, error) { return EnvFor(context.Background(), univ1, core.Options{}) }},
		{"univ1-tuned", func() (*mdp.Env, error) { return EnvFor(context.Background(), univ1, tuned) }},
		{"univ2-default", func() (*mdp.Env, error) { return EnvFor(context.Background(), univ2, core.Options{}) }},
	}

	const perCfg = 16
	got := make([][]*mdp.Env, len(cfgs))
	var wg sync.WaitGroup
	for ci := range cfgs {
		got[ci] = make([]*mdp.Env, perCfg)
		for r := 0; r < perCfg; r++ {
			wg.Add(1)
			go func(ci, r int) {
				defer wg.Done()
				env, err := cfgs[ci].fn()
				if err != nil {
					t.Errorf("%s: %v", cfgs[ci].name, err)
					return
				}
				got[ci][r] = env
			}(ci, r)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for ci := range cfgs {
		for r := 1; r < perCfg; r++ {
			if got[ci][r] != got[ci][0] {
				t.Fatalf("%s: requests received distinct environments", cfgs[ci].name)
			}
		}
	}
	for a := 0; a < len(cfgs); a++ {
		for b := a + 1; b < len(cfgs); b++ {
			if got[a][0] == got[b][0] {
				t.Fatalf("%s and %s alias one environment", cfgs[a].name, cfgs[b].name)
			}
		}
	}
}

// TestEnvCacheStatsCount pins the counting rule: a cold EnvFor records
// a miss, a warm one a hit.
func TestEnvCacheStatsCount(t *testing.T) {
	inst := univ.Univ1DSCT()
	opts := core.Options{Delta: 0.55, Beta: 0.45} // unlikely to be warm from other tests
	before := EnvCacheStats()
	if _, err := EnvFor(context.Background(), inst, opts); err != nil {
		t.Fatal(err)
	}
	mid := EnvCacheStats()
	if mid.Misses != before.Misses+1 {
		t.Fatalf("cold lookup: misses %d -> %d, want +1", before.Misses, mid.Misses)
	}
	if _, err := EnvFor(context.Background(), inst, opts); err != nil {
		t.Fatal(err)
	}
	after := EnvCacheStats()
	if after.Hits != mid.Hits+1 || after.Misses != mid.Misses {
		t.Fatalf("warm lookup: hits %d -> %d misses %d -> %d, want one hit and no miss",
			mid.Hits, after.Hits, mid.Misses, after.Misses)
	}
}
