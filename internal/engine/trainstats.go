package engine

import (
	"sync/atomic"
	"time"
)

// trainStats aggregates process-wide training activity for the serving
// metrics endpoint, mirroring the environment-cache counters: every
// tabular training run — cold or warm-started — reports here from
// trainTD, whichever layer (HTTP, CLI, harness) initiated it.
type trainStats struct {
	runs         atomic.Int64
	warmStarts   atomic.Int64
	episodes     atomic.Int64
	mergeBatches atomic.Int64
	wallNs       atomic.Int64
}

var training trainStats

// noteTrainRun records one completed tabular training run.
func noteTrainRun(episodes, mergeBatches int, wall time.Duration, warm bool) {
	training.runs.Add(1)
	if warm {
		training.warmStarts.Add(1)
	}
	training.episodes.Add(int64(episodes))
	training.mergeBatches.Add(int64(mergeBatches))
	training.wallNs.Add(wall.Nanoseconds())
}

// TrainCounters is a snapshot of the process-wide training counters.
type TrainCounters struct {
	// Runs counts completed tabular training runs.
	Runs int64
	// WarmStarts counts the runs seeded from an existing artifact.
	WarmStarts int64
	// Episodes totals the learning episodes completed across runs.
	Episodes int64
	// MergeBatches totals the parallel schedule's deterministic merge
	// rounds (0 while every run used the sequential schedule).
	MergeBatches int64
	// WallNs totals training wall-clock time in nanoseconds.
	WallNs int64
}

// EpisodesPerSecond derives the aggregate training throughput, 0 before
// any run completed.
func (c TrainCounters) EpisodesPerSecond() float64 {
	if c.WallNs <= 0 {
		return 0
	}
	return float64(c.Episodes) / (float64(c.WallNs) / float64(time.Second))
}

// TrainStats reports the cumulative training counters.
func TrainStats() TrainCounters {
	return TrainCounters{
		Runs:         training.runs.Load(),
		WarmStarts:   training.warmStarts.Load(),
		Episodes:     training.episodes.Load(),
		MergeBatches: training.mergeBatches.Load(),
		WallNs:       training.wallNs.Load(),
	}
}
