package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"github.com/rlplanner/rlplanner/internal/dataset"
)

// Fingerprint identifies an instance's catalog: the item ids, their
// roles, credits and topic coverage, plus the instance kind. A policy
// artifact records the fingerprint of the catalog it was trained on and
// Load refuses to install it against a different one — the Q table's
// indices would silently mean different items otherwise.
//
// The instance *name* is deliberately excluded: two instances with
// identical catalogs are interchangeable for a policy.
func Fingerprint(inst *dataset.Instance) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(uint64(len(s)))
		h.Write([]byte(s))
	}

	writeInt(uint64(inst.Kind))
	c := inst.Catalog
	writeInt(uint64(c.Len()))
	for i := 0; i < c.Len(); i++ {
		m := c.At(i)
		writeStr(m.ID)
		writeInt(uint64(m.Type))
		writeInt(math.Float64bits(m.Credits))
		for _, t := range m.Topics.Indices() {
			writeInt(uint64(t))
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}
