package engine

import (
	"bytes"
	"context"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
)

// quick keeps learner-based tests fast.
var quick = core.Options{Episodes: 120, Seed: 1}

func TestRegistryNames(t *testing.T) {
	want := []string{"eda", "gold", "omega", "qlearning", "sarsa", "valueiter"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestCanonicalAliases(t *testing.T) {
	cases := map[string]string{
		"":                "sarsa", // default engine
		"rl":              "sarsa",
		"SARSA":           "sarsa", // case-insensitive
		"q-learning":      "qlearning",
		"vi":              "valueiter",
		"value-iteration": "valueiter",
		"eda":             "eda",
	}
	for in, want := range cases {
		got, err := Canonical(in)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUnknownEngine(t *testing.T) {
	_, err := Train(context.Background(), "oracle", univ.Univ1DSCT(), core.Options{})
	if err == nil {
		t.Fatal("training an unknown engine should fail")
	}
	if !strings.Contains(err.Error(), "unknown engine") || !strings.Contains(err.Error(), "sarsa") {
		t.Fatalf("error should name the registry contents: %v", err)
	}
}

func TestDescribe(t *testing.T) {
	d, err := Describe("vi")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "valueiter" || !d.Tabular || d.Doc == "" {
		t.Fatalf("Describe(vi) = %+v", d)
	}
	if d, _ := Describe("gold"); d.Tabular {
		t.Fatal("gold must be procedural")
	}
}

// TestAllEnginesTrainAndRecommend proves every registered engine produces
// an immutable policy whose repeated recommendations are identical.
func TestAllEnginesTrainAndRecommend(t *testing.T) {
	inst := univ.Univ1DSCT()
	for _, name := range Names() {
		pol, err := Train(context.Background(), name, inst, quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pol.Engine() != name {
			t.Fatalf("policy engine = %q, want %q", pol.Engine(), name)
		}
		if pol.Fingerprint() != Fingerprint(inst) {
			t.Fatalf("%s: fingerprint mismatch", name)
		}
		a, err := pol.Recommend(DefaultStart)
		if err != nil {
			t.Fatalf("%s recommend: %v", name, err)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty plan", name)
		}
		b, err := pol.Recommend(DefaultStart)
		if err != nil {
			t.Fatalf("%s recommend (2nd): %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: recommendations drift between calls: %v vs %v", name, a, b)
		}
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Train(ctx, "sarsa", univ.Univ1DSCT(), quick); err == nil {
		t.Fatal("training under a canceled context should fail")
	}
}

// TestArtifactRoundTrip is the tentpole invariant: save → load must
// reproduce bit-identical recommendations for every engine.
func TestArtifactRoundTrip(t *testing.T) {
	inst := univ.Univ1DSCT()
	for _, name := range Names() {
		opts := quick
		opts.Seed = 7
		pol, err := Train(context.Background(), name, inst, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := pol.Recommend(DefaultStart)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := pol.Save(&buf); err != nil {
			t.Fatalf("%s save: %v", name, err)
		}
		loaded, err := Load(&buf, inst, opts)
		if err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		if loaded.Engine() != name {
			t.Fatalf("loaded engine = %q, want %q", loaded.Engine(), name)
		}
		got, err := loaded.Recommend(DefaultStart)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: loaded policy recommends %v, trained one %v", name, got, want)
		}
	}
}

func TestArtifactRejectsGarbage(t *testing.T) {
	_, err := Load(strings.NewReader("not a gob stream"), univ.Univ1DSCT(), core.Options{})
	if err == nil || !strings.Contains(err.Error(), "decode policy artifact") {
		t.Fatalf("garbage input: %v", err)
	}
}

func TestArtifactRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifact{Magic: "someone-elses-format"}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf, univ.Univ1DSCT(), core.Options{})
	if err == nil || !strings.Contains(err.Error(), "not an RL-Planner policy artifact") {
		t.Fatalf("wrong magic: %v", err)
	}
}

func TestArtifactRejectsNewerVersion(t *testing.T) {
	var buf bytes.Buffer
	a := artifact{Magic: artifactMagic, Version: ArtifactVersion + 1, Engine: "sarsa"}
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf, univ.Univ1DSCT(), core.Options{})
	if err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("newer version: %v", err)
	}
}

func TestArtifactRejectsFingerprintMismatch(t *testing.T) {
	trained := univ.Univ1DSCT()
	pol, err := Train(context.Background(), "sarsa", trained, quick)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = Load(&buf, univ.Univ2DS(), core.Options{})
	if err == nil || !strings.Contains(err.Error(), "different catalog") {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
	if !strings.Contains(err.Error(), trained.Name) {
		t.Fatalf("error should name the training instance: %v", err)
	}
}

func TestFingerprint(t *testing.T) {
	a, b := univ.Univ1DSCT(), univ.Univ2DS()
	if Fingerprint(a) != Fingerprint(a) {
		t.Fatal("fingerprint is not deterministic")
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("different catalogs share a fingerprint")
	}
	if len(Fingerprint(a)) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex chars", Fingerprint(a))
	}
}

func TestLoadValuesRefusesProcedural(t *testing.T) {
	pol, err := Train(context.Background(), "gold", univ.Univ1DSCT(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadValues(&buf, univ.Univ1DSCT()); err == nil {
		t.Fatal("LoadValues should refuse a procedural artifact")
	}
}
