package engine

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkStoreCachedHitParallel drives the warm hit path from
// GOMAXPROCS goroutines over a spread of keys — the multi-core serving
// shape. Before the sharded CLOCK rework every hit serialized on one
// mutex doing a MoveToFront; now hits on different shards proceed in
// parallel and a hit is a shard read-lock plus one atomic store. Run
// with -benchmem: the hit path must report 0 allocs/op, and ns/op
// should stay roughly flat as GOMAXPROCS grows instead of rising with
// the goroutine count.
func BenchmarkStoreCachedHitParallel(b *testing.B) {
	// Sized well above the key count: per-shard capacity bounds are
	// enforced independently, so a store near its bound could evict a
	// setup key on an unlucky hash skew and break the warm premise.
	s := NewStore[*int](1024)
	v := 7
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("policy-key-%d", i)
		s.Add(keys[i], &v)
	}
	b.ReportAllocs()
	b.SetParallelism(1) // GOMAXPROCS goroutines: the serving worker shape
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine walks the key set from its own offset so the
		// load spreads across shards rather than hammering one entry.
		i := runtime.NumGoroutine()
		for pb.Next() {
			if _, ok := s.Cached(keys[i%len(keys)]); !ok {
				b.Fatal("warm key missed")
			}
			i++
		}
	})
}

// BenchmarkStoreCachedHitSingleKey is the adversarial shape: every
// goroutine hits one key, so every read lands on one shard's read lock
// and one entry's access bit. This bounds the worst case the sharding
// cannot help with; it must still never take an exclusive lock.
func BenchmarkStoreCachedHitSingleKey(b *testing.B) {
	s := NewStore[*int](DefaultStoreSize)
	v := 7
	s.Add("hot", &v)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := s.Cached("hot"); !ok {
				b.Fatal("warm key missed")
			}
		}
	})
}
