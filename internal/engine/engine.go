// Package engine is the unified solver layer of the repository: one
// abstraction over every planner the paper evaluates (the SARSA core of
// Algorithm 1, its Q-learning variant, the value-iteration solver, and
// the EDA / OMEGA / gold baselines of §IV-A2).
//
// The central split is train versus serve. A Planner is a solver bound to
// one (instance, options) pair; Train produces a Policy — an immutable,
// versioned, serializable artifact that recommends plans without any
// further learning. Policies are safe to share across goroutines, which
// is what the HTTP serving path relies on: train once behind a
// singleflight, then serve many concurrent Recommend calls from the same
// artifact (the deployment shape of §IV-F, thousands of users per
// learned policy).
//
// Solvers register themselves in a name-keyed registry (registry.go), so
// the HTTP API, the CLIs and the experiment harness all dispatch through
// New/Train instead of hand-rolled string switches.
package engine

import (
	"context"
	"io"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/sarsa"
)

// DefaultStart asks Recommend to use the start item the policy was
// trained with (Options.Start, falling back to the instance default).
const DefaultStart = -1

// Planner is the training side of a solver: one engine bound to one
// (instance, options) configuration.
type Planner interface {
	// Engine returns the canonical registry name of the solver.
	Engine() string
	// Train runs the learning (or construction) phase and returns the
	// immutable policy artifact. The context is consulted between
	// coarse-grained phases; a training run that has already started its
	// inner loop completes it.
	Train(ctx context.Context) (Policy, error)
}

// Policy is a trained, immutable recommendation artifact. All methods
// are safe for concurrent use; a Policy never mutates after Train.
type Policy interface {
	// Engine returns the canonical name of the solver that produced the
	// policy.
	Engine() string
	// Instance returns the name of the instance the policy was trained on.
	Instance() string
	// Fingerprint identifies the catalog the policy was trained on; Load
	// refuses artifacts whose fingerprint does not match the target
	// instance.
	Fingerprint() string
	// Hard returns the effective hard constraints the policy was trained
	// under (options may have overridden the instance defaults).
	Hard() constraints.Hard
	// Recommend walks the policy from a start item index (DefaultStart
	// uses the trained start) and returns the recommended sequence of
	// catalog indices.
	Recommend(start int) ([]int, error)
	// Save writes the policy as a versioned, fingerprinted artifact that
	// Load can restore.
	Save(w io.Writer) error
}

// ValuePolicy is implemented by policies backed by a learned Q table
// (SARSA, Q-learning, value iteration). Interactive sessions and transfer
// need the underlying table and environment.
type ValuePolicy interface {
	Policy
	// Env returns the MDP environment the policy was trained in.
	Env() *mdp.Env
	// Values returns the learned action-value policy.
	Values() *sarsa.Policy
	// Start returns the trained start item index.
	Start() int
	// LearningCurve returns per-episode returns (nil for solvers without
	// an episodic learning loop).
	LearningCurve() []float64
}

// LayeredPolicy is implemented by policies whose action values can be
// read through a qtable.Reader — the hook fleet-scale personalization
// layers per-user overlays on. Procedural baselines (EDA, OMEGA, gold)
// carry no action values and do not implement it; serving layers fall
// back to the plain Recommend for them.
type LayeredPolicy interface {
	Policy
	// BaseReader returns the policy's frozen serve-time read surface (the
	// compiled action order) — the base a per-user qtable.Overlay wraps.
	// The returned reader must not be mutated.
	BaseReader() qtable.Reader
	// RecommendOver is Recommend reading every action value through r.
	// Passing nil or BaseReader() itself reproduces Recommend bit for
	// bit; passing an overlay over BaseReader() serves the personalized
	// walk with unshadowed states still on the compiled fast path.
	RecommendOver(start int, r qtable.Reader) ([]int, error)
}

// Layered returns p as a LayeredPolicy when its action values support
// overlay reads, or (nil, false) for value-free solvers.
func Layered(p Policy) (LayeredPolicy, bool) {
	l, ok := p.(LayeredPolicy)
	return l, ok
}

// Converger is implemented by policies that track solver convergence
// (value iteration reports its sweep count).
type Converger interface {
	// Iterations returns the number of solver iterations until
	// convergence.
	Iterations() int
}

// DegradedPolicy is implemented by policies that carry a degradation
// marker. Every built-in policy implements it; Degradation returns ""
// for a fully trained artifact and a short reason otherwise —
// DegradedPartial for a SARSA run checkpointed at its training deadline.
// Serving layers surface the marker ("degraded": true) so clients can
// tell a best-effort answer from a converged one.
type DegradedPolicy interface {
	Policy
	// Degradation returns "" for a complete policy, or the reason the
	// artifact is best-effort (e.g. DegradedPartial).
	Degradation() string
}

// DegradedPartial marks a policy checkpointed at a training deadline:
// usable, validity-guarded, but short of its configured episode budget.
const DegradedPartial = "partial"

// Degradation reports a policy's degradation marker, "" for policies
// that are complete or carry no marker.
func Degradation(p Policy) string {
	if d, ok := p.(DegradedPolicy); ok {
		return d.Degradation()
	}
	return ""
}

// EpisodicPolicy is implemented by policies that record how many
// learning episodes actually completed — the full budget for a complete
// run, fewer for one checkpointed at its training deadline. Paired with
// DegradedPartial it tells operators how far a degraded artifact got.
type EpisodicPolicy interface {
	Policy
	// Episodes returns the completed learning-episode count (0 for
	// solvers without an episodic loop).
	Episodes() int
}

// Episodes reports a policy's completed learning-episode count, 0 for
// policies that carry none.
func Episodes(p Policy) int {
	if e, ok := p.(EpisodicPolicy); ok {
		return e.Episodes()
	}
	return 0
}

// WarmStartedPolicy is implemented by policies that record warm-start
// provenance: derived policies name the artifact they were seeded from
// and the transfer mapping's warm-start distance.
type WarmStartedPolicy interface {
	Policy
	// WarmStart returns ("", 0) for cold-trained policies.
	WarmStart() (source string, distance float64)
}

// WarmStart reports a policy's warm-start provenance, ("", 0) for
// cold-trained policies or ones that carry none.
func WarmStart(p Policy) (string, float64) {
	if w, ok := p.(WarmStartedPolicy); ok {
		return w.WarmStart()
	}
	return "", 0
}
