package engine

import (
	"context"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
)

// DefaultEnvCacheSize bounds the process-wide environment cache. An
// environment is a pure function of (catalog, resolved constraints,
// resolved reward config), and building one compiles prerequisite
// programs and possibly a quadratic distance matrix — work the serving
// path should pay once per configuration, not once per request.
const DefaultEnvCacheSize = 64

// envs is the process-wide environment cache: a bounded LRU with
// per-key singleflight, so concurrent cold requests for the same
// configuration share one build. Environments are immutable and safe to
// share across trainers, policies and requests.
var envs = NewStore[*mdp.Env](DefaultEnvCacheSize)

// EnvFor returns the environment for (instance, options), building and
// caching it on first use. The cache key scopes core.EnvKey (the
// resolved kind + hard constraints + reward configuration) by the
// catalog fingerprint, so equal-config requests against different
// catalogs never share state.
func EnvFor(ctx context.Context, inst *dataset.Instance, opts core.Options) (*mdp.Env, error) {
	key, err := core.EnvKey(inst, opts)
	if err != nil {
		return nil, err
	}
	env, _, err := envs.GetOrTrain(ctx, Fingerprint(inst)+"|"+key, func() (*mdp.Env, error) {
		return core.BuildEnv(inst, opts)
	})
	return env, err
}

// newPlanner builds a core.Planner over the cached environment — the
// constructor every trainer and artifact load routes through instead of
// core.New, which rebuilds the environment from scratch.
func newPlanner(ctx context.Context, inst *dataset.Instance, opts core.Options) (*core.Planner, error) {
	env, err := EnvFor(ctx, inst, opts)
	if err != nil {
		return nil, err
	}
	return core.NewWithEnv(inst, opts, env)
}

// EnvCacheStats reports the environment cache's cumulative lookup
// counters and current size, for the serving metrics endpoint.
func EnvCacheStats() CacheStats { return envs.Stats() }

// EnvCacheBytes estimates the resident memory of the cached
// environments. The dominant terms are the distance store trip
// environments precompute (exact matrix, or quantized neighbor bands at
// scale — the store reports its own size) and the per-item
// catalog/prerequisite state; the figure is an operator-facing
// estimate, not an accounting of every allocation.
func EnvCacheBytes() int {
	return envs.SumBytes(func(env *mdp.Env) int {
		return env.NumItems()*512 + env.DistStoreBytes()
	})
}

// PolicyBytes estimates a policy artifact's resident memory: the Q
// table's own backing (8n² dense, visited-cells-proportional sparse)
// plus the compiled prefix for value-based policies, a small constant
// for the procedural baselines (their plans are recomputed per request
// from the shared environment).
func PolicyBytes(p Policy) int {
	vp, ok := p.(ValuePolicy)
	if !ok || vp.Values() == nil || vp.Values().Q == nil {
		return 1 << 10
	}
	q := vp.Values().Q
	if q.IsDense() {
		return q.MemoryBytes() + q.Size()*qtable.DefaultTopK*4
	}
	// Sparse-backed: the tiered reader costs ~12 bytes per stored cell on
	// top of the table itself.
	return q.MemoryBytes() + 12*q.Stored()
}
