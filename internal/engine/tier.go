// The durable second tier behind the policy store: memory LRU → tier →
// train. The Tier interface is what the store needs from a durable
// artifact repository (internal/repo behind a serialization adapter);
// keeping it an interface here avoids an engine→repo dependency and
// lets tests drive the protocol with in-memory fakes.
package engine

import (
	"context"
	"time"
)

// Claim-wait polling schedule: a store whose key is being trained by
// another process re-checks the tier on this exponential ladder (the
// same shape as the resilience breaker's backoff, scaled to disk-poll
// latencies).
const (
	claimPollBase = 25 * time.Millisecond
	claimPollMax  = time.Second
)

// Tier is a durable policy tier shared across processes. All methods
// must be safe for concurrent use. The tier absorbs its own faults:
// serving never depends on tier health — every error path degrades to
// local training.
type Tier[V any] interface {
	// Get loads the artifact stored under key ((zero, false) on miss;
	// a corrupt entry must be quarantined internally and report a miss).
	Get(key string) (V, bool)
	// Put write-throughs a freshly trained artifact. Failures are the
	// tier's to log and absorb.
	Put(key string, v V)
	// Quarantine permanently invalidates key's durable entry — called
	// when serving detects a malformed artifact, so the bad bytes cannot
	// reload on the next miss.
	Quarantine(key string)
	// TryClaim arbitrates the cross-process trainer for key:
	// (release, true, nil) → this process trains and must call release;
	// (nil, false, nil) → another live process is training;
	// (nil, false, err) → the tier cannot arbitrate.
	TryClaim(key string) (release func(), claimed bool, err error)
}

// AttachTier installs a durable tier behind the in-memory LRU. Lookups
// then resolve memory → tier → train: a tier hit fills the LRU without
// training, a miss trains under the tier's cross-process claim and
// writes the artifact through. Attach before serving; the store does
// not synchronize tier replacement against in-flight lookups.
func (s *Store[V]) AttachTier(t Tier[V]) { s.tier = t }

// runTrain resolves a confirmed memory miss for the singleflight
// leader. Without a tier it trains directly. With one, it consults the
// tier first, then competes for the cross-process claim: the winner
// trains and writes through; a loser polls the tier on the backoff
// ladder until the trainer's artifact appears, taking the claim over
// if the trainer dies or wedges (the tier's staleness rules).
func (s *Store[V]) runTrain(ctx context.Context, key string, train func() (V, error)) (V, error) {
	t := s.tier
	if t == nil {
		return train()
	}
	if v, ok := t.Get(key); ok {
		return v, nil
	}
	backoff := claimPollBase
	for {
		release, claimed, err := t.TryClaim(key)
		if err != nil {
			// The tier cannot arbitrate (disk fault): train locally and
			// still attempt the write-through — durability degrades,
			// serving does not.
			v, terr := train()
			if terr == nil {
				t.Put(key, v)
			}
			return v, terr
		}
		if claimed {
			// Re-check under the claim: a previous holder may have
			// published between our miss and our win. While we hold the
			// claim nobody else can publish, so this read is exact — it is
			// what makes "exactly one trainer per key" a guarantee instead
			// of a fast path.
			if v, ok := t.Get(key); ok {
				release()
				return v, nil
			}
			v, terr := train()
			if terr == nil {
				t.Put(key, v)
			}
			release()
			return v, terr
		}
		// Another process is training this key: wait out one backoff
		// step, then look for its artifact before re-competing.
		select {
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > claimPollMax {
			backoff = claimPollMax
		}
		if v, ok := t.Get(key); ok {
			return v, nil
		}
	}
}
