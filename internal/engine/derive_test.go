package engine_test

import (
	"bytes"
	"context"
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/engine"
)

func TestDeriveWarmStartsFromSibling(t *testing.T) {
	ctx := context.Background()
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()

	src, err := engine.Train(ctx, "sarsa", cs, core.Options{Episodes: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	pol, stats, err := engine.Derive(ctx, src, dsct, core.Options{Episodes: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ColdEpisodes != 150 {
		t.Fatalf("cold episodes = %d, want 150", stats.ColdEpisodes)
	}
	if stats.Distance <= 0 || stats.Distance >= 1 {
		t.Fatalf("distance = %v, want in (0,1)", stats.Distance)
	}
	if stats.WarmEpisodes >= stats.ColdEpisodes {
		t.Fatalf("warm budget %d did not shrink from cold %d", stats.WarmEpisodes, stats.ColdEpisodes)
	}
	if got := engine.Episodes(pol); got != stats.WarmEpisodes {
		t.Fatalf("policy episodes = %d, want %d", got, stats.WarmEpisodes)
	}
	from, dist := engine.WarmStart(pol)
	if from != cs.Name || dist != stats.Distance {
		t.Fatalf("warm provenance = (%q, %v), want (%q, %v)", from, dist, cs.Name, stats.Distance)
	}
	if pol.Fingerprint() != engine.Fingerprint(dsct) {
		t.Fatal("derived policy fingerprint is not the target's")
	}
	seq, err := pol.Recommend(engine.DefaultStart)
	if err != nil || len(seq) == 0 {
		t.Fatalf("derived policy cannot recommend: %v (len %d)", err, len(seq))
	}

	// Provenance survives the artifact round-trip.
	var buf bytes.Buffer
	if err := pol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := engine.Load(&buf, dsct, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.Episodes(back); got != stats.WarmEpisodes {
		t.Fatalf("loaded episodes = %d, want %d", got, stats.WarmEpisodes)
	}
	if from, dist := engine.WarmStart(back); from != cs.Name || dist != stats.Distance {
		t.Fatalf("loaded warm provenance = (%q, %v), want (%q, %v)", from, dist, cs.Name, stats.Distance)
	}
}

func TestDeriveRejectsProceduralSource(t *testing.T) {
	ctx := context.Background()
	inst := univ.Univ1CS()
	src, err := engine.Train(ctx, "eda", inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := engine.Derive(ctx, src, univ.Univ1DSCT(), core.Options{}); err == nil {
		t.Fatal("expected error deriving from a procedural policy")
	}
}

// TestPartialCheckpointRecordsEpisodes: a run interrupted at its
// deadline must carry how many episodes completed, and the count must
// survive save/load (the ISSUE 6 partial-metadata fix).
func TestPartialCheckpointRecordsEpisodes(t *testing.T) {
	inst := univ.Univ1CS()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const budget = 400
	pol, err := engine.Train(ctx, "sarsa", inst, core.Options{
		Episodes: budget,
		Seed:     1,
		OnEpisode: func(i int) {
			if i == 10 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Degradation(pol) != engine.DegradedPartial {
		t.Fatalf("degradation = %q, want %q", engine.Degradation(pol), engine.DegradedPartial)
	}
	got := engine.Episodes(pol)
	if got == 0 || got >= budget {
		t.Fatalf("partial policy episodes = %d, want in (0,%d)", got, budget)
	}

	var buf bytes.Buffer
	if err := pol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := engine.Load(&buf, inst, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Degradation(back) != engine.DegradedPartial {
		t.Fatal("degradation marker lost in artifact round-trip")
	}
	if engine.Episodes(back) != got {
		t.Fatalf("loaded episodes = %d, want %d", engine.Episodes(back), got)
	}
}

func TestTrainStatsCounters(t *testing.T) {
	ctx := context.Background()
	before := engine.TrainStats()
	if _, err := engine.Train(ctx, "sarsa", univ.Univ1CS(), core.Options{
		Episodes: 64, Seed: 3, TrainWorkers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	after := engine.TrainStats()
	if after.Runs != before.Runs+1 {
		t.Fatalf("runs %d -> %d, want +1", before.Runs, after.Runs)
	}
	if after.Episodes != before.Episodes+64 {
		t.Fatalf("episodes %d -> %d, want +64", before.Episodes, after.Episodes)
	}
	if after.MergeBatches != before.MergeBatches+2 {
		t.Fatalf("merge batches %d -> %d, want +2", before.MergeBatches, after.MergeBatches)
	}
	if after.WallNs <= before.WallNs {
		t.Fatal("training wall time did not advance")
	}
}
