package engine

import (
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// DefaultStoreSize bounds the policy cache when no explicit size is
// configured.
const DefaultStoreSize = 128

// Shard sizing: a store is striped into power-of-two shards so
// concurrent hits on different keys never touch the same lock, but only
// while each shard keeps at least minShardCap slots — a CLOCK ring
// narrower than that approximates recency too coarsely to be useful.
// Small stores (tests, tiny deployments) therefore collapse to one
// shard and behave like the classic single-lock cache.
const (
	maxStoreShards = 32
	minShardCap    = 8
)

// storeSeed keys the shard hash. One process-wide random seed is
// enough: shard placement only needs to be stable within a process.
var storeSeed = maphash.MakeSeed()

// Store is the serving-side policy cache: a bounded, sharded cache of
// immutable artifacts with per-key singleflight training. Concurrent
// requests for the same cold key share one training run; requests for
// different keys train in parallel; cached reads never wait on any
// training run — and, since the sharded rework, never wait on each
// other either.
//
// The hot path is contention-free by construction: a cache hit takes
// one shard's read lock (shared, never exclusive) and publishes its
// recency with a single atomic store on the entry's CLOCK access bit.
// No hit ever mutates shard structure — the exact MoveToFront of the
// old LRU is replaced by CLOCK second-chance eviction, which reads the
// access bits only when a shard needs a victim. Eviction is therefore
// approximate-LRU: recently touched entries survive the sweep, cold
// ones are reclaimed in ring order.
//
// Capacity is divided evenly across shards, so a pathological key
// distribution can evict slightly before the global bound is reached;
// the bound itself is never exceeded.
//
// Store is generic over the cached value so layers above the engine can
// cache their own policy wrappers.
type Store[V any] struct {
	shards []storeShard[V]
	mask   uint64
	max    int

	// tier is the optional durable second tier (AttachTier): consulted
	// after a memory miss before training, written through after every
	// successful run, quarantined alongside Remove. Attached before
	// serving, then read-only — see AttachTier.
	tier Tier[V]

	// hits / misses count lookup outcomes for the metrics endpoint. A
	// Cached probe only counts on success (its miss is not final — the
	// caller typically proceeds to GetOrTrain, which records the real
	// outcome); GetOrTrain counts a hit on a cached read and a miss for
	// both the singleflight leader and its followers.
	hits, misses atomic.Uint64
}

// storeShard is one stripe of the cache: a map for lookup, a CLOCK ring
// for eviction and the shard's slice of the singleflight call table.
// The RWMutex is held shared on the hit path and exclusive only for
// structure changes (insert, evict, remove, singleflight registration).
type storeShard[V any] struct {
	mu      sync.RWMutex
	cap     int
	entries map[string]*storeEntry[V]
	ring    []*storeEntry[V] // CLOCK ring; len == live entries <= cap
	hand    int
	calls   map[string]*call[V]
}

// storeEntry is one cached value plus its CLOCK state. val and slot are
// guarded by the shard lock (written under the exclusive lock, read
// under the shared one); touched is the access bit, written by
// concurrent readers and must therefore be atomic.
type storeEntry[V any] struct {
	key     string
	val     V
	slot    int // index in the shard ring
	touched atomic.Bool
}

// CacheStats is a point-in-time view of a Store's lookup counters and
// occupancy.
type CacheStats struct {
	Hits, Misses uint64
	Size         int
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewStore builds a store holding at most maxEntries policies
// (DefaultStoreSize when maxEntries <= 0).
func NewStore[V any](maxEntries int) *Store[V] {
	if maxEntries <= 0 {
		maxEntries = DefaultStoreSize
	}
	nshards := 1
	for nshards < maxStoreShards && maxEntries/(nshards*2) >= minShardCap {
		nshards *= 2
	}
	s := &Store[V]{
		shards: make([]storeShard[V], nshards),
		mask:   uint64(nshards - 1),
		max:    maxEntries,
	}
	per := maxEntries / nshards
	extra := maxEntries % nshards
	for i := range s.shards {
		cap := per
		if i < extra {
			cap++
		}
		s.shards[i] = storeShard[V]{
			cap:     cap,
			entries: make(map[string]*storeEntry[V]),
			calls:   make(map[string]*call[V]),
		}
	}
	return s
}

// shard maps a key to its stripe.
func (s *Store[V]) shard(key string) *storeShard[V] {
	return &s.shards[maphash.String(storeSeed, key)&s.mask]
}

// Cached returns the policy for key without ever blocking on training —
// or, on a hit, on any other reader or writer beyond the shard's shared
// lock. The recency touch is one atomic store; no list moves, no
// exclusive lock.
func (s *Store[V]) Cached(key string) (V, bool) {
	v, ok := s.shard(key).cached(key)
	if ok {
		s.hits.Add(1)
	}
	return v, ok
}

func (sh *storeShard[V]) cached(key string) (V, bool) {
	sh.mu.RLock()
	e, ok := sh.entries[key]
	if !ok {
		sh.mu.RUnlock()
		var zero V
		return zero, false
	}
	v := e.val
	sh.mu.RUnlock()
	// The access bit may be set after the lock is dropped: CLOCK only
	// needs it to be eventually visible to the next eviction sweep.
	e.touched.Store(true)
	return v, true
}

// Add installs a policy under key (used by artifact import), evicting a
// CLOCK victim from the key's shard when that shard is full.
func (s *Store[V]) Add(key string, v V) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.add(key, v)
	sh.mu.Unlock()
}

// add inserts or overwrites under the exclusive shard lock. New entries
// start with a clear access bit: an entry that is never read again is
// the next sweep's natural victim, while one Cached hit grants a full
// second chance — the CLOCK analogue of LRU's insert-at-front.
func (sh *storeShard[V]) add(key string, v V) {
	if e, ok := sh.entries[key]; ok {
		e.val = v
		e.touched.Store(true)
		return
	}
	e := &storeEntry[V]{key: key, val: v}
	if len(sh.ring) < sh.cap {
		e.slot = len(sh.ring)
		sh.ring = append(sh.ring, e)
		sh.entries[key] = e
		return
	}
	// Shard full: advance the hand, spending access bits, until an
	// untouched entry turns up. Bounded: each pass clears every bit it
	// crosses, so the sweep terminates within two revolutions.
	for {
		victim := sh.ring[sh.hand]
		if victim.touched.CompareAndSwap(true, false) {
			sh.hand = (sh.hand + 1) % len(sh.ring)
			continue
		}
		delete(sh.entries, victim.key)
		e.slot = sh.hand
		sh.ring[sh.hand] = e
		sh.entries[key] = e
		sh.hand = (sh.hand + 1) % len(sh.ring)
		return
	}
}

// remove deletes key from the shard under the exclusive lock, closing
// the ring by moving its last entry into the vacated slot.
func (sh *storeShard[V]) remove(key string) {
	e, ok := sh.entries[key]
	if !ok {
		return
	}
	delete(sh.entries, key)
	last := len(sh.ring) - 1
	moved := sh.ring[last]
	sh.ring[e.slot] = moved
	moved.slot = e.slot
	sh.ring = sh.ring[:last]
	if sh.hand >= len(sh.ring) {
		sh.hand = 0
	}
}

// GetOrTrain returns the cached policy for key, or trains it. Exactly
// one caller per key runs train at a time; the others wait for its
// result (or their context). The trained result is cached on success;
// errors are not cached, so a later request retries. The returned bool
// reports whether this call ran the training itself.
func (s *Store[V]) GetOrTrain(ctx context.Context, key string, train func() (V, error)) (V, bool, error) {
	var zero V
	sh := s.shard(key)
	if v, ok := sh.cached(key); ok {
		s.hits.Add(1)
		return v, false, nil
	}
	sh.mu.Lock()
	// Re-check under the exclusive lock: the value may have landed
	// between the shared-lock probe and here.
	if e, ok := sh.entries[key]; ok {
		v := e.val
		sh.mu.Unlock()
		e.touched.Store(true)
		s.hits.Add(1)
		return v, false, nil
	}
	s.misses.Add(1)
	if c, ok := sh.calls[key]; ok {
		// Follower: wait for the in-flight training run without holding
		// the lock, so cached reads stay available meanwhile.
		sh.mu.Unlock()
		select {
		case <-c.done:
			return c.val, false, c.err
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	sh.calls[key] = c
	sh.mu.Unlock()

	// Leader: train outside the lock. The deferred cleanup also covers a
	// panicking trainer, so followers are never stranded on done.
	finished := false
	defer func() {
		if !finished && c.err == nil {
			c.err = fmt.Errorf("engine: training for %q aborted", key)
		}
		sh.mu.Lock()
		delete(sh.calls, key)
		if c.err == nil {
			sh.add(key, c.val)
		}
		sh.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = s.runTrain(ctx, key, train)
	finished = true
	return c.val, true, c.err
}

// Remove evicts key from the cache. The serving layer uses it to drop a
// policy that failed at Recommend time (a malformed artifact), so the
// next request retrains instead of re-serving the bad value. With a
// durable tier attached, the key's on-disk entry is quarantined too —
// otherwise the bad artifact would simply reload from disk on the next
// miss. An in-flight training call for the key is unaffected. Removing
// an absent key is a no-op.
func (s *Store[V]) Remove(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.remove(key)
	sh.mu.Unlock()
	if t := s.tier; t != nil {
		t.Quarantine(key)
	}
}

// Len returns the number of cached policies.
func (s *Store[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.ring)
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns the store's cumulative hit/miss counters and current
// entry count.
func (s *Store[V]) Stats() CacheStats {
	return CacheStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Size: s.Len()}
}

// SumBytes folds size over every cached value under each shard's shared
// lock — the resident-memory estimate the metrics endpoint reports.
// size must be cheap and must not call back into the store.
func (s *Store[V]) SumBytes(size func(V) int) int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.ring {
			total += size(e.val)
		}
		sh.mu.RUnlock()
	}
	return total
}

// Keys returns the cached keys. With the sharded CLOCK layout there is
// no global recency order to report; the order is shard-by-shard ring
// order and callers must not assume anything beyond "every live key
// appears exactly once".
func (s *Store[V]) Keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.ring {
			out = append(out, e.key)
		}
		sh.mu.RUnlock()
	}
	return out
}
