package engine

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultStoreSize bounds the policy cache when no explicit size is
// configured.
const DefaultStoreSize = 128

// Store is the serving-side policy cache: a bounded LRU of immutable
// artifacts with per-key singleflight training. Concurrent requests for
// the same cold key share one training run; requests for different keys
// train in parallel; cached reads never wait on any training run.
//
// Store is generic over the cached value so layers above the engine can
// cache their own policy wrappers.
type Store[V any] struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	calls   map[string]*call[V]

	// tier is the optional durable second tier (AttachTier): consulted
	// after a memory miss before training, written through after every
	// successful run, quarantined alongside Remove.
	tier Tier[V]

	// hits / misses count lookup outcomes for the metrics endpoint. A
	// Cached probe only counts on success (its miss is not final — the
	// caller typically proceeds to GetOrTrain, which records the real
	// outcome); GetOrTrain counts a hit on a cached read and a miss for
	// both the singleflight leader and its followers.
	hits, misses atomic.Uint64
}

// CacheStats is a point-in-time view of a Store's lookup counters and
// occupancy.
type CacheStats struct {
	Hits, Misses uint64
	Size         int
}

type storeEntry[V any] struct {
	key string
	val V
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewStore builds a store holding at most maxEntries policies
// (DefaultStoreSize when maxEntries <= 0).
func NewStore[V any](maxEntries int) *Store[V] {
	if maxEntries <= 0 {
		maxEntries = DefaultStoreSize
	}
	return &Store[V]{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		calls:   make(map[string]*call[V]),
	}
}

// Cached returns the policy for key without ever blocking on training.
func (s *Store[V]) Cached(key string) (V, bool) {
	s.mu.Lock()
	v, ok := s.cachedLocked(key)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	}
	return v, ok
}

func (s *Store[V]) cachedLocked(key string) (V, bool) {
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*storeEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Add installs a policy under key (used by artifact import), evicting
// the least recently used entry when the store is full.
func (s *Store[V]) Add(key string, v V) {
	s.mu.Lock()
	s.addLocked(key, v)
	s.mu.Unlock()
}

func (s *Store[V]) addLocked(key string, v V) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*storeEntry[V]).val = v
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&storeEntry[V]{key: key, val: v})
	for s.order.Len() > s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry[V]).key)
	}
}

// GetOrTrain returns the cached policy for key, or trains it. Exactly
// one caller per key runs train at a time; the others wait for its
// result (or their context). The trained result is cached on success;
// errors are not cached, so a later request retries. The returned bool
// reports whether this call ran the training itself.
func (s *Store[V]) GetOrTrain(ctx context.Context, key string, train func() (V, error)) (V, bool, error) {
	var zero V
	s.mu.Lock()
	if v, ok := s.cachedLocked(key); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return v, false, nil
	}
	s.misses.Add(1)
	if c, ok := s.calls[key]; ok {
		// Follower: wait for the in-flight training run without holding
		// the lock, so cached reads stay available meanwhile.
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.val, false, c.err
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	// Leader: train outside the lock. The deferred cleanup also covers a
	// panicking trainer, so followers are never stranded on done.
	finished := false
	defer func() {
		if !finished && c.err == nil {
			c.err = fmt.Errorf("engine: training for %q aborted", key)
		}
		s.mu.Lock()
		delete(s.calls, key)
		if c.err == nil {
			s.addLocked(key, c.val)
		}
		s.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = s.runTrain(ctx, key, train)
	finished = true
	return c.val, true, c.err
}

// Remove evicts key from the cache. The serving layer uses it to drop a
// policy that failed at Recommend time (a malformed artifact), so the
// next request retrains instead of re-serving the bad value. With a
// durable tier attached, the key's on-disk entry is quarantined too —
// otherwise the bad artifact would simply reload from disk on the next
// miss. An in-flight training call for the key is unaffected. Removing
// an absent key is a no-op.
func (s *Store[V]) Remove(key string) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.Remove(el)
		delete(s.entries, key)
	}
	t := s.tier
	s.mu.Unlock()
	if t != nil {
		t.Quarantine(key)
	}
}

// Len returns the number of cached policies.
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats returns the store's cumulative hit/miss counters and current
// entry count.
func (s *Store[V]) Stats() CacheStats {
	return CacheStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Size: s.Len()}
}

// SumBytes folds size over every cached value under the store lock —
// the resident-memory estimate the metrics endpoint reports. size must
// be cheap and must not call back into the store.
func (s *Store[V]) SumBytes(size func(V) int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for el := s.order.Front(); el != nil; el = el.Next() {
		total += size(el.Value.(*storeEntry[V]).val)
	}
	return total
}

// Keys returns the cached keys, most recently used first.
func (s *Store[V]) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry[V]).key)
	}
	return out
}
