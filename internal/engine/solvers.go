package engine

import (
	"context"
	"io"
	"time"

	"github.com/rlplanner/rlplanner/internal/baselines/eda"
	"github.com/rlplanner/rlplanner/internal/baselines/gold"
	"github.com/rlplanner/rlplanner/internal/baselines/omega"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/valueiter"
)

func init() {
	Register(Descriptor{
		Name:    "sarsa",
		Aliases: []string{"", "rl", "rl-planner"},
		Doc:     "SARSA learner of Algorithm 1 (the paper's RL-Planner)",
		Tabular: true,
		Train:   trainTD(sarsa.SARSA),
	})
	Register(Descriptor{
		Name:    "qlearning",
		Aliases: []string{"q-learning", "q"},
		Doc:     "off-policy Q-learning variant of the Algorithm 1 learner",
		Tabular: true,
		Train:   trainTD(sarsa.QLearning),
	})
	Register(Descriptor{
		Name:    "valueiter",
		Aliases: []string{"value-iteration", "vi"},
		Doc:     "value iteration over the item-pair abstraction (§III-C alternative)",
		Tabular: true,
		Train:   trainValueIter,
	})
	Register(Descriptor{
		Name:  "eda",
		Doc:   "greedy next-step EDA baseline (§IV-A2)",
		Train: trainEDA,
	})
	Register(Descriptor{
		Name:  "omega",
		Doc:   "adapted OMEGA co-coverage baseline (§IV-A2)",
		Train: trainOmega,
	})
	Register(Descriptor{
		Name:  "gold",
		Doc:   "gold-standard plan synthesizer (§IV-A2)",
		Train: trainGold,
	})
}

// meta carries the identity every policy shares.
type meta struct {
	engine   string
	instance string
	fp       string
	hard     constraints.Hard
	// degraded is "" for complete artifacts, DegradedPartial for a run
	// checkpointed at its training deadline.
	degraded string
	// episodes counts the learning episodes that actually completed — the
	// full budget for a complete run, fewer for a partial checkpoint, 0
	// for solvers without an episodic loop.
	episodes int
	// warmFrom names the source artifact a derived policy was seeded
	// from ("" for cold-trained policies); warmDistance is the transfer
	// mapping's warm-start distance at derivation time.
	warmFrom     string
	warmDistance float64
}

func (m meta) Engine() string         { return m.engine }
func (m meta) Instance() string       { return m.instance }
func (m meta) Fingerprint() string    { return m.fp }
func (m meta) Hard() constraints.Hard { return m.hard }
func (m meta) Degradation() string    { return m.degraded }
func (m meta) Episodes() int          { return m.episodes }

// WarmStart reports the provenance of a derived policy: the source it
// was seeded from ("" for cold-trained) and the warm-start distance.
func (m meta) WarmStart() (string, float64) { return m.warmFrom, m.warmDistance }

func metaFor(engine string, inst *dataset.Instance, hard constraints.Hard) meta {
	return meta{engine: engine, instance: inst.Name, fp: Fingerprint(inst), hard: hard}
}

// valuePolicy is the artifact of the tabular solvers: an immutable Q
// table plus the environment it was trained in.
type valuePolicy struct {
	meta
	env        *mdp.Env
	start      int
	values     *sarsa.Policy
	curve      []float64
	iterations int
}

func (p *valuePolicy) Recommend(start int) ([]int, error) {
	if start == DefaultStart {
		start = p.start
	}
	return p.values.RecommendGuided(p.env, start)
}

// BaseReader exposes the compiled action order as the overlay base —
// already built at train/load time, so this never pays a compile.
func (p *valuePolicy) BaseReader() qtable.Reader { return p.values.Compiled() }

// RecommendOver serves the guided walk reading action values through r
// (nil falls back to the policy's own compiled order).
func (p *valuePolicy) RecommendOver(start int, r qtable.Reader) ([]int, error) {
	if start == DefaultStart {
		start = p.start
	}
	return p.values.RecommendGuidedOver(p.env, start, r)
}

func (p *valuePolicy) Env() *mdp.Env            { return p.env }
func (p *valuePolicy) Values() *sarsa.Policy    { return p.values }
func (p *valuePolicy) Start() int               { return p.start }
func (p *valuePolicy) LearningCurve() []float64 { return p.curve }
func (p *valuePolicy) Iterations() int          { return p.iterations }

func (p *valuePolicy) Save(w io.Writer) error {
	return saveArtifact(w, artifactFor(p.meta, p.values, 0))
}

// walkPolicy is the artifact of the procedural baselines: the walk is
// recomputed per Recommend from the immutable environment, so one policy
// serves concurrent requests.
type walkPolicy struct {
	meta
	start int
	seed  int64
	walk  func(start int) ([]int, error)
}

func (p *walkPolicy) Recommend(start int) ([]int, error) {
	if start == DefaultStart {
		start = p.start
	}
	return p.walk(start)
}

func (p *walkPolicy) Save(w io.Writer) error {
	return saveArtifact(w, artifactFor(p.meta, nil, p.seed))
}

// trainTD builds the SARSA/Q-learning training funcs. The engine name
// fixes the TD rule; Options.Algorithm is overridden so "sarsa" always
// means SARSA regardless of caller options.
func trainTD(alg sarsa.Algorithm) TrainFunc {
	name := "sarsa"
	if alg == sarsa.QLearning {
		name = "qlearning"
	}
	return func(ctx context.Context, inst *dataset.Instance, opts core.Options) (Policy, error) {
		opts.Algorithm = alg
		p, err := newPlanner(ctx, inst, opts)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// LearnContext checkpoints at the deadline: a run interrupted
		// after ≥1 episode yields the best-so-far Q table, which the
		// guided recommendation walk can still serve validly — the
		// artifact is marked partial rather than failing the request.
		begin := time.Now()
		if err := p.LearnContext(ctx); err != nil {
			return nil, err
		}
		noteTrainRun(p.TrainedEpisodes(), p.MergeBatches(), time.Since(begin), opts.InitQ != nil)
		m := metaFor(name, inst, p.Env().Hard())
		m.episodes = p.TrainedEpisodes()
		if p.Partial() {
			m.degraded = DegradedPartial
		}
		values := p.Policy()
		// Pay the compiled-order build at train time so the first request
		// against the artifact serves at steady-state speed.
		values.Compiled()
		return &valuePolicy{
			meta:   m,
			env:    p.Env(),
			start:  p.SarsaConfig().Start,
			values: values,
			curve:  p.LearningCurve(),
		}, nil
	}
}

func trainValueIter(ctx context.Context, inst *dataset.Instance, opts core.Options) (Policy, error) {
	p, err := newPlanner(ctx, inst, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Value iteration needs γ < 1 to converge; the resolved SARSA config
	// carries the effective γ (option override or Table III default).
	gamma := p.SarsaConfig().Gamma
	if gamma >= 1 {
		gamma = 0.95
	}
	res, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: gamma, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	res.Policy.Compiled()
	return &valuePolicy{
		meta:       metaFor("valueiter", inst, p.Env().Hard()),
		env:        p.Env(),
		start:      p.SarsaConfig().Start,
		values:     res.Policy,
		iterations: res.Iterations,
	}, nil
}

func trainEDA(ctx context.Context, inst *dataset.Instance, opts core.Options) (Policy, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := newPlanner(ctx, inst, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env, seed := p.Env(), opts.Seed
	// The greedy walk itself runs at Recommend time under the serving
	// path's own guard; the training context must not outlive Train.
	return &walkPolicy{
		meta:  metaFor("eda", inst, env.Hard()),
		start: p.SarsaConfig().Start,
		seed:  seed,
		walk:  func(start int) ([]int, error) { return eda.Plan(env, start, seed) },
	}, nil
}

func trainOmega(ctx context.Context, inst *dataset.Instance, opts core.Options) (Policy, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := newPlanner(ctx, inst, opts)
	if err != nil {
		return nil, err
	}
	env := p.Env()
	// The co-coverage utility matrix is start-independent: compute it once
	// at train time (checking the deadline per row), share it across
	// Recommend calls.
	m, err := omega.CoCoverageContext(ctx, env.Catalog())
	if err != nil {
		return nil, err
	}
	return &walkPolicy{
		meta:  metaFor("omega", inst, env.Hard()),
		start: p.SarsaConfig().Start,
		walk:  func(start int) ([]int, error) { return omega.PlanUtility(env, start, m) },
	}, nil
}

func trainGold(ctx context.Context, inst *dataset.Instance, _ core.Options) (Policy, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The gold synthesizer is the pure train-once case: the plan does not
	// depend on the start item, so Train computes it (under the training
	// deadline) and Recommend only copies it out.
	seq, err := gold.PlanContext(ctx, inst)
	if err != nil {
		return nil, err
	}
	return &walkPolicy{
		meta:  metaFor("gold", inst, inst.Hard),
		start: inst.StartIndex(),
		walk:  func(int) ([]int, error) { return append([]int(nil), seq...), nil },
	}, nil
}
