package reward

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

const (
	p = item.Primary
	s = item.Secondary
)

func example1Template() constraints.Template {
	return constraints.Template{
		{p, p, s, p, s, s},
		{p, s, s, s, p, p},
		{p, s, s, p, p, s},
	}
}

func validConfig() Config {
	return Config{
		Delta:    0.6,
		Beta:     0.4,
		Epsilon:  1,
		Weights:  Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: example1Template(),
	}
}

func TestValidate(t *testing.T) {
	c := validConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	bad := c
	bad.Delta = 0.5 // δ+β = 0.9
	if err := bad.Validate(); err == nil {
		t.Fatal("δ+β ≠ 1 accepted")
	}

	// w1 ≤ w2 is legal to run (the robustness sweeps use it) but flagged
	// by the premise check.
	premiseless := c
	premiseless.Weights = Weights{Primary: 0.4, Secondary: 0.6}
	if err := premiseless.Validate(); err != nil {
		t.Fatalf("w1 ≤ w2 rejected by Validate: %v", err)
	}
	if premiseless.SatisfiesTheorem1Premise() {
		t.Fatal("w1 ≤ w2 passes the Theorem 1 premise check")
	}
	if !c.SatisfiesTheorem1Premise() {
		t.Fatal("w1 > w2 fails the Theorem 1 premise check")
	}

	bad = c
	bad.Weights = Weights{Primary: 0.5, Secondary: 0.6}
	if err := bad.Validate(); err == nil {
		t.Fatal("w1+w2 ≠ 1 accepted")
	}

	bad = c
	bad.Epsilon = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative ε accepted")
	}

	cat := c
	cat.Weights = Weights{Category: Univ2CategoryWeights()}
	if err := cat.Validate(); err != nil {
		t.Fatalf("Table III category weights rejected: %v", err)
	}
	cat.Weights.Category = []float64{0.5, 0.6}
	if err := cat.Validate(); err == nil {
		t.Fatal("non-normalized category weights accepted")
	}
	cat.Weights.Category = []float64{-0.1, 1.1}
	if err := cat.Validate(); err == nil {
		t.Fatal("negative category weight accepted")
	}
}

func TestR1Gate(t *testing.T) {
	c := validConfig() // ε = 1: count regime
	if c.R1(0, 60) != 0 {
		t.Fatal("gain 0 should fail ε=1")
	}
	if c.R1(1, 60) != 1 {
		t.Fatal("gain 1 should pass ε=1")
	}
	c.Epsilon = 2
	if c.R1(1, 60) != 0 || c.R1(2, 60) != 1 {
		t.Fatal("ε=2 semantics broken")
	}
	// Fractional regime (Table III / Table IX): gain is compared as a
	// fraction of |T_ideal|.
	c.Epsilon = 0.0025
	if c.R1(1, 60) != 1 || c.R1(0, 60) != 0 {
		t.Fatal("fractional ε semantics broken")
	}
	// ε = 0.02 with |T_ideal| = 60 demands 2 newly covered topics.
	c.Epsilon = 0.02
	if c.R1(1, 60) != 0 {
		t.Fatal("gain 1/60 should fail ε=0.02")
	}
	if c.R1(2, 60) != 1 {
		t.Fatal("gain 2/60 should pass ε=0.02")
	}
	// Degenerate ideal: any positive gain passes.
	if c.R1(1, 0) != 1 {
		t.Fatal("empty ideal should accept positive gains")
	}
}

func TestR2Gate(t *testing.T) {
	c := validConfig()
	if c.R2(true, true) != 1 {
		t.Fatal("satisfied antecedent should score 1")
	}
	if c.R2(false, true) != 0 {
		t.Fatal("unsatisfied antecedent should score 0")
	}
	if c.R2(true, false) != 0 {
		t.Fatal("theme repeat should score 0")
	}
}

func TestThetaIsProduct(t *testing.T) {
	c := validConfig()
	tr := Transition{CoverageGain: 3, PrereqOK: true, ThemeOK: true}
	if c.Theta(tr) != 1 {
		t.Fatal("θ should be 1 when both gates pass")
	}
	tr.PrereqOK = false
	if c.Theta(tr) != 0 {
		t.Fatal("θ should be 0 when r2 fails")
	}
	tr = Transition{CoverageGain: 0, PrereqOK: true, ThemeOK: true}
	if c.Theta(tr) != 0 {
		t.Fatal("θ should be 0 when r1 fails")
	}
}

func TestRewardEquation2(t *testing.T) {
	// Reward for a valid transition must equal δ·AvgSim + β·w_type exactly.
	c := validConfig()
	seq := []item.Type{p, s, p, p} // AvgSim = 1 per the paper's example
	tr := Transition{
		SeqTypes:     seq,
		CoverageGain: 1,
		PrereqOK:     true,
		ThemeOK:      true,
		Type:         item.Primary,
		Category:     item.NoCategory,
	}
	want := 0.6*1 + 0.4*0.6
	if got := c.Reward(tr); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Reward = %v, want %v", got, want)
	}

	tr.Type = item.Secondary
	want = 0.6*1 + 0.4*0.4
	if got := c.Reward(tr); math.Abs(got-want) > 1e-12 {
		t.Fatalf("secondary Reward = %v, want %v", got, want)
	}
}

func TestRewardGatedToZero(t *testing.T) {
	c := validConfig()
	tr := Transition{
		SeqTypes:     []item.Type{p},
		CoverageGain: 0, // fails ε = 1
		PrereqOK:     true,
		ThemeOK:      true,
		Type:         item.Primary,
	}
	if got := c.Reward(tr); got != 0 {
		t.Fatalf("gated reward = %v, want 0", got)
	}
}

func TestRewardMinimumSimilarityVariant(t *testing.T) {
	c := validConfig()
	c.Sim = seqsim.Minimum
	seq := []item.Type{p, s, p, p} // MinSim = 0.5 per the paper's example
	tr := Transition{SeqTypes: seq, CoverageGain: 1, PrereqOK: true, ThemeOK: true, Type: item.Primary}
	want := 0.6*0.5 + 0.4*0.6
	if got := c.Reward(tr); math.Abs(got-want) > 1e-12 {
		t.Fatalf("min-sim Reward = %v, want %v", got, want)
	}
}

func TestCategoryWeights(t *testing.T) {
	w := Weights{Primary: 0.6, Secondary: 0.4, Category: Univ2CategoryWeights()}
	if got := w.Of(item.Primary, 3); got != 0.42 {
		t.Fatalf("category weight = %v, want 0.42 (w4)", got)
	}
	// Out-of-range / NoCategory falls back to the type weight.
	if got := w.Of(item.Primary, item.NoCategory); got != 0.6 {
		t.Fatalf("fallback weight = %v, want 0.6", got)
	}
	if got := w.Of(item.Secondary, 99); got != 0.4 {
		t.Fatalf("out-of-range weight = %v, want 0.4", got)
	}
}

func TestPrimaryRewardExceedsSecondary(t *testing.T) {
	// The Case II argument of Theorem 1: with w1 > w2, a valid primary item
	// is always rewarded above a valid secondary item in the same state.
	c := validConfig()
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		k := 1 + int(uint(seed)%6)
		seqP := make([]item.Type, k)
		seqS := make([]item.Type, k)
		for i := 0; i < k-1; i++ {
			ty := item.Type(r.Intn(2))
			seqP[i], seqS[i] = ty, ty
		}
		seqP[k-1], seqS[k-1] = item.Primary, item.Secondary
		trP := Transition{SeqTypes: seqP, CoverageGain: 1, PrereqOK: true, ThemeOK: true, Type: item.Primary, Category: item.NoCategory}
		trS := Transition{SeqTypes: seqS, CoverageGain: 1, PrereqOK: true, ThemeOK: true, Type: item.Secondary, Category: item.NoCategory}
		// The β·w term always favors primary; the δ·Sim term differs only
		// through the final position's match, so compare with the same
		// sequence to isolate the weight ordering.
		trS2 := trS
		trS2.SeqTypes = seqP
		return c.Reward(trP) > c.Reward(trS2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRewardNonNegativeAndBounded(t *testing.T) {
	c := validConfig()
	r := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		k := 1 + int(uint(seed)%6)
		seq := make([]item.Type, k)
		for i := range seq {
			seq[i] = item.Type(r.Intn(2))
		}
		tr := Transition{
			SeqTypes:     seq,
			CoverageGain: r.Intn(3),
			PrereqOK:     r.Intn(2) == 0,
			ThemeOK:      r.Intn(2) == 0,
			Type:         item.Type(r.Intn(2)),
			Category:     item.NoCategory,
		}
		got := c.Reward(tr)
		// Bound: δ·k + β·max(w1,w2).
		ub := c.Delta*float64(k) + c.Beta*c.Weights.Primary
		return got >= 0 && got <= ub+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigs(t *testing.T) {
	it := example1Template()
	cc := DefaultCourseConfig(it)
	if err := cc.Validate(); err != nil {
		t.Fatalf("course defaults invalid: %v", err)
	}
	if cc.Delta != 0.8 || cc.Beta != 0.2 {
		t.Fatalf("course δ,β = %v,%v", cc.Delta, cc.Beta)
	}
	tc := DefaultTripConfig(it)
	if err := tc.Validate(); err != nil {
		t.Fatalf("trip defaults invalid: %v", err)
	}
	if tc.Delta != 0.6 || tc.Beta != 0.4 {
		t.Fatalf("trip δ,β = %v,%v", tc.Delta, tc.Beta)
	}
	if len(Univ2CategoryWeights()) != 6 {
		t.Fatal("Univ-2 weights should have 6 entries")
	}
}

func TestSoftGateVariant(t *testing.T) {
	c := validConfig()
	c.SoftGate = true
	seq := []item.Type{p, s, p, p} // AvgSim = 1
	valid := Transition{SeqTypes: seq, CoverageGain: 1, PrereqOK: true, ThemeOK: true, Type: item.Primary, Category: item.NoCategory}
	invalid := valid
	invalid.PrereqOK = false

	base := 0.6*1 + 0.4*0.6
	if got := c.Reward(valid); math.Abs(got-base) > 1e-12 {
		t.Fatalf("soft-gate valid reward = %v, want %v", got, base)
	}
	// An invalid action is penalized, not zeroed.
	want := base - SoftGatePenalty
	if got := c.Reward(invalid); math.Abs(got-want) > 1e-12 {
		t.Fatalf("soft-gate invalid reward = %v, want %v", got, want)
	}
	if c.Reward(invalid) >= c.Reward(valid) {
		t.Fatal("penalty did not order invalid below valid")
	}
}
