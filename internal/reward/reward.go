// Package reward implements the weighted reward function of §III-B that
// transforms the constrained MDP into an unconstrained one:
//
//	R(s_i, e_i, s_{i+1}) = θ · [δ·Sim_agg(s_{i+1}, IT) + β·weight_type]   (Eq. 2)
//	θ = r1 · r2                                                            (Eq. 5)
//	r1 = 1 iff |T_ideal ∩ (T_current' \ T_current)| ≥ ε                    (Eq. 3)
//	r2 = 1 iff Dist(pre^m, m) ≥ gap (AND/OR semantics)                     (Eq. 4)
//
// with δ + β = 1, weight_primary = w1, weight_secondary = w2, w1 + w2 = 1
// (and, for the Univ-2 instantiation, one weight per sub-discipline
// w1..w6). Sim_agg is AvgSim by default and MinSim in the paper's variant.
//
// The reward is pure: callers (the MDP environment) compute the transition
// facts — coverage gain, antecedent satisfaction, resulting type sequence —
// and the reward combines them. This keeps Eq. 2 testable in isolation and
// is the basis for the executable Theorem 1 property test.
package reward

import (
	"fmt"
	"math"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

// Weights carries the item-type weights of Eq. 2.
type Weights struct {
	// Primary is w1, the weight of primary items.
	Primary float64
	// Secondary is w2, the weight of secondary items; w1 + w2 = 1.
	Secondary float64
	// Category optionally assigns one weight per item category
	// (sub-disciplines a–f of the Univ-2 M.S. DS program, weights w1..w6
	// of Table III). When non-empty, an item with a valid Category uses
	// Category[cat] instead of the type weight.
	Category []float64
}

// Of returns the weight of an item with the given type and category.
func (w Weights) Of(t item.Type, category int) float64 {
	if len(w.Category) > 0 && category >= 0 && category < len(w.Category) {
		return w.Category[category]
	}
	if t == item.Primary {
		return w.Primary
	}
	return w.Secondary
}

// Config parameterizes Equation 2 for one planning problem.
type Config struct {
	// Delta is δ, the weight of the interleaving similarity term.
	Delta float64
	// Beta is β, the weight of the item-type term; δ + β = 1.
	Beta float64
	// Epsilon is ε, the topic-coverage gain threshold of Eq. 3. Two
	// regimes reconcile the paper's usages: ε ≥ 1 (the worked example)
	// thresholds the raw gain count; ε < 1 (the Table III defaults and the
	// Table IX/XII sweeps, 0.0025–0.02) thresholds the gain as a fraction
	// of |T_ideal| — with |T_ideal| = 60, ε = 0.02 demands ⌈1.2⌉ = 2 newly
	// covered topics, which is what makes the sweep's scores collapse to 0
	// at ε = 0.02 exactly as Table IX reports.
	Epsilon float64
	// Weights are the item-type weights (w1, w2, optionally w1..w6).
	Weights Weights
	// Sim selects average (default) or minimum similarity aggregation.
	Sim seqsim.Mode
	// Template is IT, the interleaving template the similarity term uses.
	Template constraints.Template
	// PopularityScale, used by the trip instantiation, scales the item
	// weight by the POI's popularity (weight · popularity/5): the paper's
	// trip scores track POI popularity, which the pure type weight cannot
	// express because it is constant within a type (see DESIGN.md §3).
	PopularityScale bool
	// SoftGate replaces Equation 5's multiplicative θ gate with a
	// subtractive penalty: R = δ·sim + β·w − (1−θ)·SoftGatePenalty. The
	// paper's design zeroes invalid actions outright; this ablation
	// variant lets the learner trade validity against similarity (see
	// BenchmarkAblationThetaGate).
	SoftGate bool
}

// SoftGatePenalty is the (1−θ) penalty magnitude of the SoftGate variant.
const SoftGatePenalty = 2.0

// Validate checks the normalization constraints of Eq. 2: δ+β = 1 and,
// unless per-category weights are used, w1+w2 = 1. It deliberately does
// NOT require w1 > w2 — the robustness study sweeps weight settings that
// break Theorem 1's Case II premise (Table IX tries w1/w2 = 0.4/0.6 and
// 0.5/0.5 and observes degraded or zero scores); use
// SatisfiesTheorem1Premise to test the premise separately.
func (c Config) Validate() error {
	const tol = 1e-9
	if math.Abs(c.Delta+c.Beta-1) > tol {
		return fmt.Errorf("reward: δ+β = %g, want 1", c.Delta+c.Beta)
	}
	if c.Delta < 0 || c.Beta < 0 {
		return fmt.Errorf("reward: negative weight δ=%g β=%g", c.Delta, c.Beta)
	}
	if len(c.Weights.Category) == 0 {
		if math.Abs(c.Weights.Primary+c.Weights.Secondary-1) > tol {
			return fmt.Errorf("reward: w1+w2 = %g, want 1",
				c.Weights.Primary+c.Weights.Secondary)
		}
		if c.Weights.Primary < 0 || c.Weights.Secondary < 0 {
			return fmt.Errorf("reward: negative type weight w1=%g w2=%g",
				c.Weights.Primary, c.Weights.Secondary)
		}
	} else {
		var sum float64
		for i, w := range c.Weights.Category {
			if w < 0 {
				return fmt.Errorf("reward: negative category weight w%d = %g", i+1, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("reward: Σ category weights = %g, want 1", sum)
		}
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("reward: negative ε = %g", c.Epsilon)
	}
	return nil
}

// SatisfiesTheorem1Premise reports whether w1 > w2, the premise of the
// Case II argument in Theorem 1's proof. Configurations violating it are
// legal to run (the robustness study does) but lose the split guarantee.
func (c Config) SatisfiesTheorem1Premise() bool {
	if len(c.Weights.Category) > 0 {
		return true
	}
	return c.Weights.Primary > c.Weights.Secondary
}

// Transition carries the facts about one action (adding item m to state
// s_i, yielding s_{i+1}) that Equation 2 consumes.
type Transition struct {
	// SeqTypes is the primary/secondary type sequence after the action
	// (the session at state s_{i+1}).
	SeqTypes []item.Type
	// CoverageGain is |T_ideal ∩ (T_current' \ T_current)|: how many ideal
	// topics the action newly covers (input to r1, Eq. 3).
	CoverageGain int
	// IdealSize is |T_ideal|, the denominator of the fractional ε regime.
	IdealSize int
	// PrereqOK reports whether the item's antecedent expression holds at
	// its position with the required gap (r2, Eq. 4).
	PrereqOK bool
	// ThemeOK reports the trip-planning theme-gap rule: false when the item
	// repeats the previous item's theme. Course planning always sets true.
	// It folds into r2 because the paper defines the trip gap as "not
	// visiting two POIs of the same theme consecutively" (§IV-A1).
	ThemeOK bool
	// Type is type^m of the added item.
	Type item.Type
	// Category is the added item's category (sub-discipline/theme) or
	// item.NoCategory.
	Category int
	// Popularity is the added POI's 1–5 popularity (0 for courses).
	Popularity float64
}

// R1 evaluates Equation 3: 1 when the topic coverage gain meets ε.
// For ε ≥ 1 the raw gain count is thresholded; for ε < 1 the gain as a
// fraction of |T_ideal| is (see Config.Epsilon). With ε < 1 a zero gain
// never passes, so adding an item that covers nothing new is always
// invalid — the paper's elimination of "items that are poor in topic
// coverage".
func (c Config) R1(coverageGain, idealSize int) float64 {
	if c.Epsilon >= 1 {
		if float64(coverageGain) >= c.Epsilon {
			return 1
		}
		return 0
	}
	if coverageGain <= 0 {
		return 0
	}
	if idealSize <= 0 {
		return 1
	}
	if float64(coverageGain)/float64(idealSize) >= c.Epsilon {
		return 1
	}
	return 0
}

// R2 evaluates Equation 4 extended with the trip theme-gap rule.
func (c Config) R2(prereqOK, themeOK bool) float64 {
	if prereqOK && themeOK {
		return 1
	}
	return 0
}

// Theta evaluates Equation 5: θ = r1 · r2.
func (c Config) Theta(tr Transition) float64 {
	return c.R1(tr.CoverageGain, tr.IdealSize) * c.R2(tr.PrereqOK, tr.ThemeOK)
}

// Reward evaluates Equation 2 for one transition.
func (c Config) Reward(tr Transition) float64 {
	theta := c.Theta(tr)
	if theta == 0 && !c.SoftGate {
		return 0
	}
	sim := seqsim.Aggregate(c.Sim, tr.SeqTypes, c.Template)
	w := c.Weights.Of(tr.Type, tr.Category)
	if c.PopularityScale && tr.Popularity > 0 {
		w *= tr.Popularity / 5
	}
	base := c.Delta*sim + c.Beta*w
	if c.SoftGate {
		return base - (1-theta)*SoftGatePenalty
	}
	return theta * base
}

// DefaultCourseConfig returns the Table III defaults for course planning:
// δ=0.8, β=0.2, ε=0.0025, w1=0.6, w2=0.4, average similarity.
// (Table XI identifies w1=0.6/w2=0.4 and δ=0.6/β=0.4 as the best Univ-1
// reward weights; Table III's header row lists δ=0.8/β=0.2 as the default.)
func DefaultCourseConfig(it constraints.Template) Config {
	return Config{
		Delta:    0.8,
		Beta:     0.2,
		Epsilon:  0.0025,
		Weights:  Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: it,
	}
}

// DefaultTripConfig returns the Table III defaults for trip planning:
// δ=0.6, β=0.4, ε=0.0025, w1=0.6, w2=0.4, average similarity.
func DefaultTripConfig(it constraints.Template) Config {
	return Config{
		Delta:    0.6,
		Beta:     0.4,
		Epsilon:  0.0025,
		Weights:  Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: it,
	}
}

// Univ2CategoryWeights returns the Table III sub-discipline weights
// w1..w6 = 0.25, 0.01, 0.15, 0.42, 0.01, 0.16 for the Stanford M.S. DS
// program's six sub-disciplines a–f.
func Univ2CategoryWeights() []float64 {
	return []float64{0.25, 0.01, 0.15, 0.42, 0.01, 0.16}
}
