package resilience

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGuardPassesThroughResults(t *testing.T) {
	v, err := Guard("op", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("Guard = %d, %v", v, err)
	}
	boom := errors.New("boom")
	if _, err := Guard("op", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Guard error = %v, want boom", err)
	}
}

func TestGuardConvertsPanic(t *testing.T) {
	v, err := Guard("engine chaos", func() (*int, error) { panic("Q table corrupted") })
	if v != nil {
		t.Fatalf("panicking guard returned a value: %v", v)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Op != "engine chaos" || pe.Value != "Q table corrupted" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	if msg := pe.Error(); !strings.Contains(msg, "engine chaos") || !strings.Contains(msg, "Q table corrupted") {
		t.Fatalf("Error() = %q", msg)
	}
}

func TestGuardConvertsRuntimePanic(t *testing.T) {
	_, err := Guard("op", func() (int, error) {
		var s []int
		return s[3], nil // index out of range
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("runtime panic not converted: %v", err)
	}
}

// fakeClock drives a Breaker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerExponentialBackoff(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(time.Second, 8*time.Second)
	b.now = clk.now

	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("fresh key must be allowed")
	}
	// Failure schedule: 1s, 2s, 4s, 8s, 8s (capped).
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second} {
		if got := b.Failure("k"); got != want {
			t.Fatalf("failure %d backoff = %v, want %v", i+1, got, want)
		}
	}
	if b.Failures("k") != 5 {
		t.Fatalf("failures = %d", b.Failures("k"))
	}
	ok, wait := b.Allow("k")
	if ok || wait <= 0 || wait > 8*time.Second {
		t.Fatalf("Allow during backoff = %v, %v", ok, wait)
	}
	// The window elapses: the key becomes retryable, not blacklisted.
	clk.advance(9 * time.Second)
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("key still blocked after the backoff window elapsed")
	}
	// Success clears all state.
	b.Success("k")
	if b.Failures("k") != 0 {
		t.Fatalf("failures after success = %d", b.Failures("k"))
	}
	if got := b.Failure("k"); got != time.Second {
		t.Fatalf("post-success failure backoff = %v, want the base again", got)
	}
}

func TestBreakerKeysAreIndependent(t *testing.T) {
	b := NewBreaker(time.Hour, time.Hour)
	b.Failure("poisoned")
	if ok, _ := b.Allow("poisoned"); ok {
		t.Fatal("failed key should be backing off")
	}
	if ok, _ := b.Allow("healthy"); !ok {
		t.Fatal("an unrelated key must not be affected")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.base != DefaultBackoffBase || b.max != DefaultBackoffMax {
		t.Fatalf("defaults = %v/%v", b.base, b.max)
	}
	// max below base is raised to base.
	b = NewBreaker(10*time.Second, time.Second)
	if b.max != 10*time.Second {
		t.Fatalf("max = %v, want clamped to base", b.max)
	}
}

func TestSemaphoreCapAndRelease(t *testing.T) {
	s := NewSemaphore(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("two acquisitions within cap must succeed")
	}
	if s.TryAcquire() {
		t.Fatal("third acquisition beyond cap must fail")
	}
	if s.InUse() != 2 || s.Cap() != 2 {
		t.Fatalf("InUse/Cap = %d/%d", s.InUse(), s.Cap())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("released slot must be reusable")
	}
}

func TestSemaphoreUnlimited(t *testing.T) {
	var s *Semaphore // nil = unlimited
	for i := 0; i < 100; i++ {
		if !s.TryAcquire() {
			t.Fatal("nil semaphore must always admit")
		}
	}
	s.Release()
	if s.Cap() != 0 || s.InUse() != 0 {
		t.Fatalf("nil semaphore Cap/InUse = %d/%d", s.Cap(), s.InUse())
	}
	if NewSemaphore(0) != nil {
		t.Fatal("NewSemaphore(0) should be the unlimited nil semaphore")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	var m Metrics
	m.Panics.Add(2)
	m.Fallbacks.Add(1)
	snap := m.Snapshot()
	if snap["panics"] != 2 || snap["fallbacks"] != 1 || snap["timeouts"] != 0 {
		t.Fatalf("snapshot = %v", snap)
	}
}
