package resilience

// Semaphore is a non-blocking counting semaphore: the admission-control
// gate over concurrent cold-start trainings. A nil Semaphore (or one
// built with n <= 0) admits everything, so "no cap configured" needs no
// branches at call sites.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore builds a semaphore admitting at most n concurrent holders;
// n <= 0 returns nil, the unlimited semaphore.
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		return nil
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// TryAcquire takes a slot without blocking; false means the cap is
// reached and the caller should shed load.
func (s *Semaphore) TryAcquire() bool {
	if s == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by TryAcquire.
func (s *Semaphore) Release() {
	if s == nil {
		return
	}
	<-s.slots
}

// Cap returns the configured concurrency cap (0 = unlimited).
func (s *Semaphore) Cap() int {
	if s == nil {
		return 0
	}
	return cap(s.slots)
}

// InUse returns the number of currently held slots.
func (s *Semaphore) InUse() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}
