// Package faultinject provides a scriptable fault-injection engine for
// exercising the serving stack's degradation ladder under test. The
// engine registers in the ordinary solver registry, so the full HTTP
// stack — singleflight store, breaker, admission control, fallback —
// exercises real faults through its production code paths.
//
// The engine is test-only by convention: nothing imports it outside
// _test files, so production binaries never register it. Each New call
// returns an unregister func for t.Cleanup, keeping the registry's
// duplicate-registration panic at bay across tests in one binary.
package faultinject

import (
	"context"
	"fmt"
	"io"
	"sync"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/engine"
)

// Mode scripts what the engine's Train calls do.
type Mode int

const (
	// OK trains instantly and serves a valid single-step plan.
	OK Mode = iota
	// Panic panics inside Train — the registry's Guard must catch it.
	Panic
	// Hang blocks Train until the training context is done (the budget
	// deadline) or Release is called.
	Hang
	// Malformed returns a policy whose Recommend yields an out-of-range
	// catalog index, detonating in the serving layer instead of Train.
	Malformed
	// FailN returns an error for the next N trainings (see FailTimes),
	// then behaves like OK.
	FailN
)

// Engine is a scriptable fault-injection solver. Script it with Set /
// FailTimes, observe it with Trainings and HangStarted. All methods are
// safe for concurrent use with in-flight trainings.
type Engine struct {
	name string

	mu       sync.Mutex
	mode     Mode
	failN    int
	trains   int
	released bool

	hung    chan struct{}
	release chan struct{}
}

// New registers a fault engine under name and returns it with the
// unregister func to defer in test cleanup.
func New(name string) (*Engine, func()) {
	e := &Engine{
		name:    name,
		hung:    make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	engine.Register(engine.Descriptor{
		Name:  name,
		Doc:   "scriptable fault-injection engine (tests only)",
		Train: e.train,
	})
	return e, func() { engine.Unregister(name) }
}

// Set scripts the behavior of subsequent Train calls.
func (e *Engine) Set(m Mode) {
	e.mu.Lock()
	e.mode = m
	e.mu.Unlock()
}

// FailTimes scripts the next n Train calls to fail, after which the
// engine succeeds — the shape retry/backoff tests need.
func (e *Engine) FailTimes(n int) {
	e.mu.Lock()
	e.mode = FailN
	e.failN = n
	e.mu.Unlock()
}

// Trainings returns how many Train calls the engine has received.
func (e *Engine) Trainings() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.trains
}

// HangStarted delivers one signal each time a Hang-mode training begins
// blocking, so tests can sequence against an in-flight hang.
func (e *Engine) HangStarted() <-chan struct{} { return e.hung }

// Release unblocks every current and future Hang-mode training, which
// then completes successfully. Idempotent.
func (e *Engine) Release() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.released {
		e.released = true
		close(e.release)
	}
}

func (e *Engine) train(ctx context.Context, inst *dataset.Instance, _ core.Options) (engine.Policy, error) {
	e.mu.Lock()
	e.trains++
	mode := e.mode
	if mode == FailN {
		if e.failN > 0 {
			e.failN--
		} else {
			mode = OK
		}
	}
	e.mu.Unlock()

	switch mode {
	case Panic:
		panic(fmt.Sprintf("faultinject %s: scripted panic", e.name))
	case Hang:
		select {
		case e.hung <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-e.release:
		}
	case FailN:
		return nil, fmt.Errorf("faultinject %s: scripted failure", e.name)
	}
	return &policy{
		name:      e.name,
		instance:  inst.Name,
		fp:        engine.Fingerprint(inst),
		hard:      inst.Hard,
		start:     inst.StartIndex(),
		malformed: mode == Malformed,
	}, nil
}

// policy is the fault engine's artifact: a trivial one-step plan, or a
// deliberately corrupt one in Malformed mode.
type policy struct {
	name      string
	instance  string
	fp        string
	hard      constraints.Hard
	start     int
	malformed bool
}

func (p *policy) Engine() string         { return p.name }
func (p *policy) Instance() string       { return p.instance }
func (p *policy) Fingerprint() string    { return p.fp }
func (p *policy) Hard() constraints.Hard { return p.hard }

func (p *policy) Recommend(start int) ([]int, error) {
	if p.malformed {
		// An index far outside any catalog: the serving layer's panic
		// guard, not this package, must contain the resulting
		// out-of-range access.
		return []int{1 << 30}, nil
	}
	if start == engine.DefaultStart {
		start = p.start
	}
	return []int{start}, nil
}

func (p *policy) Save(io.Writer) error {
	return fmt.Errorf("faultinject %s: policies are not serializable", p.name)
}
