package resilience

import (
	"sync"
	"time"
)

// Default backoff schedule for a Breaker built with zero durations.
const (
	DefaultBackoffBase = 1 * time.Second
	DefaultBackoffMax  = 30 * time.Second
)

// Breaker tracks per-key failure state with exponential backoff. A key
// that keeps failing is not retried on every request — the first failure
// opens a base-length backoff window, and each further failure doubles it
// up to the cap. The key is never permanently poisoned: once the window
// elapses the next caller may retry, and one success clears the state.
//
// The serving layer uses one Breaker over policy-store keys, so a
// panicking or deadline-blown training run suppresses retraining storms
// on exactly that (instance, engine, options) key while every other key
// trains normally.
type Breaker struct {
	mu      sync.Mutex
	base    time.Duration
	max     time.Duration
	now     func() time.Time // injectable clock for tests
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	fails int
	until time.Time
}

// NewBreaker builds a breaker with the given backoff schedule; zero
// durations select the defaults.
func NewBreaker(base, max time.Duration) *Breaker {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if max < base {
		max = base
	}
	return &Breaker{base: base, max: max, now: time.Now, entries: make(map[string]*breakerEntry)}
}

// Allow reports whether key may attempt work now. When it may not, the
// remaining backoff window is returned so callers can set Retry-After.
func (b *Breaker) Allow(key string) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		return true, 0
	}
	if wait := e.until.Sub(b.now()); wait > 0 {
		return false, wait
	}
	return true, 0
}

// Failure records a failed attempt for key and returns the backoff window
// now in force (base × 2^(failures−1), capped at max).
func (b *Breaker) Failure(key string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	e.fails++
	backoff := b.base << (e.fails - 1)
	if backoff > b.max || backoff <= 0 { // <= 0 guards shift overflow
		backoff = b.max
	}
	e.until = b.now().Add(backoff)
	return backoff
}

// Success clears key's failure state.
func (b *Breaker) Success(key string) {
	b.mu.Lock()
	delete(b.entries, key)
	b.mu.Unlock()
}

// Failures returns the consecutive failure count recorded for key.
func (b *Breaker) Failures(key string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[key]; ok {
		return e.fails
	}
	return 0
}
