// Package resilience is the fault-tolerance layer of the serving stack.
// The north-star deployment serves heavy interactive traffic, where a
// single slow or panicking training run must never wedge the daemon or
// the requests queued behind its singleflight key. The package provides
// the small, composable primitives the engine and HTTP layers thread
// together into a degradation ladder (engine → bounded retry → feasible
// baseline → load shedding):
//
//   - Guard converts panics in solver code into typed *PanicError values,
//     so one corrupted training run is an error for one key instead of a
//     crash for every user of the process.
//   - Breaker keeps per-key failure state with exponential backoff, so a
//     poisoned policy key is retried on a schedule instead of hammered
//     (or permanently blacklisted).
//   - Semaphore caps concurrent cold-start trainings, the admission
//     control behind the server's -max-training flag.
//   - Metrics counts faults so operators can see the ladder working.
//
// The paper's own framing motivates the ladder: the gold/greedy
// baselines produce valid-but-suboptimal plans (§IV-A2), which makes a
// feasible baseline a principled bounded-latency fallback when RL
// training cannot finish inside its budget.
package resilience

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// PanicError is a recovered panic from guarded solver code. It satisfies
// the error interface so panics flow through ordinary error paths
// (singleflight result channels, HTTP error mapping) without re-raising.
type PanicError struct {
	// Op names the guarded operation, e.g. `engine sarsa`.
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic without the stack (the stack is for logs).
func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Op, e.Value)
}

// Guard runs fn and converts a panic into a *PanicError, leaving normal
// results and errors untouched. It is the isolation boundary around every
// solver Train call and every policy Recommend on the serving path.
func Guard[T any](op string, fn func() (T, error)) (out T, err error) {
	defer func() {
		if v := recover(); v != nil {
			var zero T
			out, err = zero, &PanicError{Op: op, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Metrics counts resilience events. All fields are atomic; a zero Metrics
// is ready to use. Snapshot renders it for a diagnostics endpoint.
type Metrics struct {
	// Panics counts solver panics converted into errors.
	Panics atomic.Int64
	// Timeouts counts training runs that hit their deadline.
	Timeouts atomic.Int64
	// Fallbacks counts requests served by the fallback engine.
	Fallbacks atomic.Int64
	// Rejections counts requests shed by admission control or backoff.
	Rejections atomic.Int64
	// Partials counts deadline-checkpointed (partial) policies served.
	Partials atomic.Int64
}

// Snapshot returns the current counter values keyed by name.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"panics":     m.Panics.Load(),
		"timeouts":   m.Timeouts.Load(),
		"fallbacks":  m.Fallbacks.Load(),
		"rejections": m.Rejections.Load(),
		"partials":   m.Partials.Load(),
	}
}
