package topics

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/bitset"
)

// paperTopics is the 13-topic vocabulary of Table II.
func paperTopics() *Vocabulary {
	return MustVocabulary(
		"Algorithms", "Classification", "Clustering", "Statistics",
		"Regression", "Data Structure", "Neural Network", "Probability",
		"Data Visualization", "Linear System", "Matrix Decomposition",
		"Data Management", "Data Transfer",
	)
}

func TestVocabularyBasics(t *testing.T) {
	v := paperTopics()
	if v.Len() != 13 {
		t.Fatalf("Len = %d, want 13", v.Len())
	}
	i, ok := v.Index("Clustering")
	if !ok || i != 2 {
		t.Fatalf("Index(Clustering) = %d,%v", i, ok)
	}
	if v.Name(2) != "Clustering" {
		t.Fatalf("Name(2) = %q", v.Name(2))
	}
	if _, ok := v.Index("Quantum"); ok {
		t.Fatal("unknown topic found")
	}
}

func TestNewVocabularyRejectsDuplicates(t *testing.T) {
	if _, err := NewVocabulary([]string{"A", "A"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewVocabulary([]string{"A", " "}); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestVectorMatchesPaperDataMining(t *testing.T) {
	// T^m2 for Data Mining = [0,1,1,0,0,0,0,0,0,0,0,0,0].
	v := paperTopics()
	got := v.MustVector("Classification", "Clustering")
	want := bitset.FromIndices(13, 1, 2)
	if !got.Equal(want) {
		t.Fatalf("vector = %s, want %s", got, want)
	}
}

func TestVectorUnknownTopic(t *testing.T) {
	v := paperTopics()
	if _, err := v.Vector("Nope"); err == nil {
		t.Fatal("unknown topic accepted")
	}
}

func TestDecode(t *testing.T) {
	v := paperTopics()
	s := v.MustVector("Algorithms", "Data Structure")
	names := v.Decode(s)
	if len(names) != 2 || names[0] != "Algorithms" || names[1] != "Data Structure" {
		t.Fatalf("Decode = %v", names)
	}
}

func TestDecodeLengthMismatchPanics(t *testing.T) {
	v := paperTopics()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched length")
		}
	}()
	v.Decode(bitset.New(5))
}

func TestCoverageRatio(t *testing.T) {
	v := paperTopics()
	ideal := v.MustVector("Classification", "Clustering", "Neural Network", "Linear System")
	covered := v.MustVector("Classification", "Clustering", "Statistics")
	if got := CoverageRatio(covered, ideal); got != 0.5 {
		t.Fatalf("CoverageRatio = %v, want 0.5", got)
	}
	if got := CoverageRatio(covered, bitset.New(13)); got != 1 {
		t.Fatalf("empty ideal ratio = %v, want 1", got)
	}
}

func TestNamesAndSortedAreCopies(t *testing.T) {
	v := paperTopics()
	n := v.Names()
	n[0] = "mutated"
	if v.Name(0) == "mutated" {
		t.Fatal("Names leaked internal slice")
	}
	s := v.Sorted()
	if s[0] != "Algorithms" {
		t.Fatalf("Sorted[0] = %q", s[0])
	}
}
