// Package topics maps human-readable topic/theme names (the set T in the
// paper) to dense indices and wraps bit-vector coverage vectors (T^m) with
// name-aware helpers. A Vocabulary is immutable once built so it can be
// shared freely across goroutines.
package topics

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rlplanner/rlplanner/internal/bitset"
)

// Vocabulary is an immutable, ordered set of topic names.
type Vocabulary struct {
	names []string
	index map[string]int
}

// NewVocabulary builds a vocabulary from names, preserving order.
// Duplicate or empty names are an error: topic identity must be unambiguous
// because T^ideal and T^m vectors index into the same vocabulary.
func NewVocabulary(names []string) (*Vocabulary, error) {
	v := &Vocabulary{
		names: make([]string, len(names)),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("topics: empty name at position %d", i)
		}
		if _, dup := v.index[n]; dup {
			return nil, fmt.Errorf("topics: duplicate name %q", n)
		}
		v.names[i] = n
		v.index[n] = i
	}
	return v, nil
}

// MustVocabulary is NewVocabulary that panics on error, for fixed literals.
func MustVocabulary(names ...string) *Vocabulary {
	v, err := NewVocabulary(names)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the number of topics.
func (v *Vocabulary) Len() int { return len(v.names) }

// Name returns the topic name at index i.
func (v *Vocabulary) Name(i int) string { return v.names[i] }

// Names returns a copy of all topic names in index order.
func (v *Vocabulary) Names() []string {
	out := make([]string, len(v.names))
	copy(out, v.names)
	return out
}

// Index returns the index of name and whether it exists.
func (v *Vocabulary) Index(name string) (int, bool) {
	i, ok := v.index[name]
	return i, ok
}

// Vector builds a coverage vector with the named topics set.
// Unknown names are an error.
func (v *Vocabulary) Vector(names ...string) (bitset.Set, error) {
	s := bitset.New(v.Len())
	for _, n := range names {
		i, ok := v.index[n]
		if !ok {
			return bitset.Set{}, fmt.Errorf("topics: unknown topic %q", n)
		}
		s.Set(i)
	}
	return s, nil
}

// MustVector is Vector that panics on unknown names, for fixed literals.
func (v *Vocabulary) MustVector(names ...string) bitset.Set {
	s, err := v.Vector(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Decode returns the names of the topics set in s, in index order.
func (v *Vocabulary) Decode(s bitset.Set) []string {
	if s.Len() != v.Len() {
		panic(fmt.Sprintf("topics: vector length %d does not match vocabulary %d", s.Len(), v.Len()))
	}
	idx := s.Indices()
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = v.names[j]
	}
	return out
}

// CoverageRatio returns |covered ∩ ideal| / |ideal|, the fraction of the
// user's ideal topics a plan covers; 1 when ideal is empty.
func CoverageRatio(covered, ideal bitset.Set) float64 {
	want := ideal.Count()
	if want == 0 {
		return 1
	}
	return float64(covered.IntersectCount(ideal)) / float64(want)
}

// Sorted returns topic names in lexical order (useful for stable output).
func (v *Vocabulary) Sorted() []string {
	out := v.Names()
	sort.Strings(out)
	return out
}
