package textproc

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Data Structures & Algorithms (CS-610)")
	want := []string{"data", "structures", "algorithms", "cs", "610"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if Tokenize("") != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Musée d'Orsay")
	want := []string{"musée", "d", "orsay"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestExtractTopics(t *testing.T) {
	got := ExtractTopics("Introduction to Big Data")
	want := []string{"big", "data"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractTopics = %v, want %v", got, want)
	}
}

func TestExtractTopicsDropsCodesAndDuplicates(t *testing.T) {
	got := ExtractTopics("CS 675 Machine Learning and Machine Intelligence")
	want := []string{"cs", "machine", "learning", "intelligence"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractTopics = %v, want %v", got, want)
	}
}

func TestExtractTopicsStopwords(t *testing.T) {
	got := ExtractTopics("Advanced Topics in the Design of Algorithms")
	want := []string{"design", "algorithms"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtractTopics = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("algorithms") {
		t.Fatal("IsStopword misclassifies")
	}
}

func TestBuildVocabulary(t *testing.T) {
	titles := []string{
		"Data Mining",
		"Data Analytics with R Programming",
		"Machine Learning",
	}
	got := BuildVocabulary(titles)
	want := []string{"data", "mining", "analytics", "programming", "machine", "learning"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BuildVocabulary = %v, want %v", got, want)
	}
}

func TestBuildVocabularyDistinct(t *testing.T) {
	got := BuildVocabulary([]string{"Data Mining", "Data Management"})
	count := map[string]int{}
	for _, w := range got {
		count[w]++
		if count[w] > 1 {
			t.Fatalf("duplicate topic %q in %v", w, got)
		}
	}
}
