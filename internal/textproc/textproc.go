// Package textproc reproduces the paper's topic-vector construction
// pipeline (§IV-A1): "to form topic vectors, we extract nouns from course
// names and removed stopwords". Without a POS tagger available offline,
// noun extraction follows the heuristic the paper's artifacts imply:
// tokenize the title, drop stopwords and pure numbers/codes, and keep the
// remaining content words (course titles are overwhelmingly noun phrases,
// so content-word extraction and noun extraction coincide in practice).
package textproc

import (
	"strings"
	"unicode"
)

// stopwords is a compact English stopword list covering the function words
// that occur in course titles and POI descriptions.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "de": true, "des": true, "du": true, "for": true,
	"from": true, "in": true, "into": true, "is": true, "it": true,
	"its": true, "la": true, "le": true, "of": true, "on": true, "or": true,
	"st": true, "the": true, "their": true, "to": true, "und": true,
	"using": true, "via": true, "with": true, "without": true,
	"i": true, "ii": true, "iii": true, "iv": true,
	// Title framing words that carry no topical content.
	"introduction": true, "intro": true, "advanced": true, "topics": true,
	"special": true, "selected": true, "seminar": true, "fundamentals": true,
	"principles": true, "foundations": true, "applied": true,
}

// Tokenize splits text into lowercase word tokens, treating any
// non-letter/non-digit rune as a separator.
func Tokenize(text string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// IsStopword reports whether the (lowercase) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// isNumeric reports whether a token is all digits (course numbers, years).
func isNumeric(tok string) bool {
	for _, r := range tok {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(tok) > 0
}

// ExtractTopics returns the topical content words of a title: tokens that
// survive stopword removal, numeric filtering and a minimum length of two
// runes, de-duplicated in first-occurrence order.
func ExtractTopics(title string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, tok := range Tokenize(title) {
		if len([]rune(tok)) < 2 || isNumeric(tok) || stopwords[tok] || seen[tok] {
			continue
		}
		seen[tok] = true
		out = append(out, tok)
	}
	return out
}

// BuildVocabulary extracts topics from every title and returns the
// distinct topics in first-occurrence order — the per-program topic sets
// whose sizes §IV-A1 reports (60, 61, 100, 73 …).
func BuildVocabulary(titles []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, title := range titles {
		for _, topic := range ExtractTopics(title) {
			if !seen[topic] {
				seen[topic] = true
				out = append(out, topic)
			}
		}
	}
	return out
}
