// Package feedback implements the adaptive extension sketched in the
// paper's conclusion (§VI): a loop that consumes user feedback on
// recommended plans — binary useful/not-useful signals, categorical 1–5
// ratings, or probability distributions — and adapts the reward weights
// for future planning rounds.
//
// The adaptation is a multiplicative-weights update: feedback above the
// neutral point reinforces the reward component (interleaving similarity
// vs item-type weight) that contributed most to the rated plan, feedback
// below it shifts mass to the other component. The same rule adapts the
// primary/secondary weights using the plan's primary share. Weights stay
// normalized (δ+β = 1, w1+w2 = 1) so every intermediate configuration is a
// valid Equation 2 instance.
package feedback

import (
	"fmt"
	"math"

	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/reward"
)

// Signal is one piece of user feedback, normalized to [0, 1] by Value.
type Signal interface {
	// Value maps the feedback onto [0, 1]; 0.5 is neutral.
	Value() float64
}

// Binary is useful / not-useful feedback.
type Binary bool

// Value implements Signal: useful = 1, not useful = 0.
func (b Binary) Value() float64 {
	if b {
		return 1
	}
	return 0
}

// Rating is a categorical 1–5 rating.
type Rating float64

// Value implements Signal: 1 → 0, 3 → 0.5, 5 → 1 (clamped).
func (r Rating) Value() float64 {
	v := (float64(r) - 1) / 4
	return math.Max(0, math.Min(1, v))
}

// Distribution is a probability distribution over the rating scale 1–5
// (index 0 = rating 1). Its value is the normalized expectation.
type Distribution []float64

// Value implements Signal.
func (d Distribution) Value() float64 {
	var total, ev float64
	for i, p := range d {
		total += p
		ev += p * float64(i+1)
	}
	if total == 0 {
		return 0.5
	}
	return Rating(ev / total).Value()
}

// Event records one observed plan with its feedback.
type Event struct {
	// Detail is the measured plan evaluation.
	Detail eval.Detail
	// Signal is the normalized feedback value.
	Signal float64
}

// Loop adapts a reward configuration from feedback.
type Loop struct {
	cfg     reward.Config
	rate    float64
	history []Event
	planLen int
}

// NewLoop starts an adaptation loop from a base configuration. rate
// controls update aggressiveness (0 < rate ≤ 1; 0 selects the 0.3
// default). planLen normalizes the interleaving score (H).
func NewLoop(cfg reward.Config, planLen int, rate float64) (*Loop, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("feedback: rate %g out of (0,1]", rate)
	}
	if rate == 0 {
		rate = 0.3
	}
	if planLen <= 0 {
		return nil, fmt.Errorf("feedback: plan length %d", planLen)
	}
	return &Loop{cfg: cfg, rate: rate, planLen: planLen}, nil
}

// Config returns the current (adapted) reward configuration.
func (l *Loop) Config() reward.Config { return l.cfg }

// History returns the observed events.
func (l *Loop) History() []Event { return append([]Event(nil), l.history...) }

// Observe folds one plan's feedback into the weights and returns the
// updated configuration.
func (l *Loop) Observe(d eval.Detail, sig Signal) reward.Config {
	s := sig.Value()
	l.history = append(l.history, Event{Detail: d, Signal: s})

	// Component qualities in [0, 1].
	interleave := math.Max(0, math.Min(1, d.Interleave/float64(l.planLen)))
	coverage := math.Max(0, math.Min(1, d.Coverage))

	// Multiplicative update: positive feedback (s > 0.5) boosts the
	// component that performed well in this plan; negative feedback
	// drains it.
	push := l.rate * (s - 0.5)
	delta := l.cfg.Delta * math.Exp(push*interleave)
	beta := l.cfg.Beta * math.Exp(push*coverage)
	if sum := delta + beta; sum > 0 {
		l.cfg.Delta, l.cfg.Beta = delta/sum, beta/sum
	}

	// Type weights follow the plan's primary share: if a primary-heavy
	// plan was liked, primaries gain weight, and vice versa.
	if len(l.cfg.Weights.Category) == 0 {
		share := primaryShare(d)
		w1 := l.cfg.Weights.Primary * math.Exp(push*share)
		w2 := l.cfg.Weights.Secondary * math.Exp(push*(1-share))
		if sum := w1 + w2; sum > 0 {
			l.cfg.Weights.Primary, l.cfg.Weights.Secondary = w1/sum, w2/sum
		}
	}
	return l.cfg
}

// DefaultOverlayRate is the overlay nudge aggressiveness used when
// ApplyToOverlay's rate is zero — the same default the weight loop uses.
const DefaultOverlayRate = 0.3

// ApplyToOverlay folds one plan's feedback signal into a per-user Q
// overlay: every transition (plan[i] → plan[i+1]) the user rated is
// nudged toward the signal,
//
//	Q'(s,e) = Q(s,e) + rate·(v − 0.5)·(1 + |Q(s,e)|)
//
// where v = sig.Value() ∈ [0, 1] with 0.5 neutral. The (1 + |Q|) factor
// scales the push to the value's own magnitude, so a strong signal can
// reorder actions whose learned values differ, while a neutral signal
// (v = 0.5) writes nothing at all — the no-op the bit-identical serving
// guarantee depends on. rate ≤ 0 selects DefaultOverlayRate. It returns
// the number of transitions written. Transitions with out-of-range
// indices are skipped rather than panicking: the plan may come from an
// untrusted API request.
func ApplyToOverlay(o *qtable.Overlay, plan []int, sig Signal, rate float64) int {
	if o == nil || len(plan) < 2 {
		return 0
	}
	if rate <= 0 {
		rate = DefaultOverlayRate
	}
	push := rate * (sig.Value() - 0.5)
	if push == 0 {
		return 0
	}
	n := o.Size()
	written := 0
	for i := 0; i+1 < len(plan); i++ {
		s, e := plan[i], plan[i+1]
		if s < 0 || s >= n || e < 0 || e >= n {
			continue
		}
		q := o.Get(s, e)
		o.Set(s, e, q+push*(1+math.Abs(q)))
		written++
	}
	return written
}

// primaryShare estimates the primary fraction of the rated plan from the
// ordering-validity detail; without per-item data it defaults to 0.5
// (neutral) unless the Detail carries an explicit share.
func primaryShare(d eval.Detail) float64 {
	// eval.Detail does not carry the type split directly; OrderingValid is
	// a reasonable stand-in for "the structural part the user reacted to".
	if d.OrderingValid > 0 {
		return d.OrderingValid
	}
	return 0.5
}
