package feedback

import (
	"math"
	"testing"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/reward"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

func baseConfig() reward.Config {
	return reward.Config{
		Delta: 0.6, Beta: 0.4,
		Epsilon: 1,
		Weights: reward.Weights{Primary: 0.6, Secondary: 0.4},
		Sim:     seqsim.Average,
		Template: constraints.Template{
			{item.Primary, item.Secondary},
		},
	}
}

func TestSignalValues(t *testing.T) {
	if Binary(true).Value() != 1 || Binary(false).Value() != 0 {
		t.Fatal("binary values wrong")
	}
	if Rating(1).Value() != 0 || Rating(5).Value() != 1 || Rating(3).Value() != 0.5 {
		t.Fatal("rating values wrong")
	}
	if Rating(9).Value() != 1 || Rating(-2).Value() != 0 {
		t.Fatal("rating clamping wrong")
	}
	d := Distribution{0, 0, 1, 0, 0} // all mass on rating 3
	if d.Value() != 0.5 {
		t.Fatalf("distribution value = %v", d.Value())
	}
	if (Distribution{}).Value() != 0.5 {
		t.Fatal("empty distribution should be neutral")
	}
	skew := Distribution{0, 0, 0, 0, 1} // all mass on 5
	if skew.Value() != 1 {
		t.Fatalf("skewed distribution = %v", skew.Value())
	}
}

func TestNewLoopValidation(t *testing.T) {
	if _, err := NewLoop(baseConfig(), 10, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoop(baseConfig(), 0, 0.3); err == nil {
		t.Fatal("zero plan length accepted")
	}
	if _, err := NewLoop(baseConfig(), 10, 2); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	bad := baseConfig()
	bad.Delta = 0.9
	if _, err := NewLoop(bad, 10, 0.3); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestObserveKeepsNormalization(t *testing.T) {
	l, err := NewLoop(baseConfig(), 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d := eval.Detail{Interleave: 8, Coverage: 0.3, OrderingValid: 1}
	for i := 0; i < 50; i++ {
		cfg := l.Observe(d, Binary(i%2 == 0))
		if math.Abs(cfg.Delta+cfg.Beta-1) > 1e-9 {
			t.Fatalf("δ+β = %v", cfg.Delta+cfg.Beta)
		}
		if math.Abs(cfg.Weights.Primary+cfg.Weights.Secondary-1) > 1e-9 {
			t.Fatalf("w1+w2 = %v", cfg.Weights.Primary+cfg.Weights.Secondary)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("adapted config invalid: %v", err)
		}
	}
	if len(l.History()) != 50 {
		t.Fatalf("history = %d events", len(l.History()))
	}
}

func TestPositiveFeedbackReinforcesStrongComponent(t *testing.T) {
	// A plan with excellent interleaving but poor coverage, liked by the
	// user, should shift weight toward the interleaving term δ.
	l, _ := NewLoop(baseConfig(), 10, 0.5)
	d := eval.Detail{Interleave: 10, Coverage: 0.1, OrderingValid: 1}
	before := l.Config().Delta
	for i := 0; i < 10; i++ {
		l.Observe(d, Rating(5))
	}
	if after := l.Config().Delta; after <= before {
		t.Fatalf("δ did not grow: %v → %v", before, after)
	}
}

func TestNegativeFeedbackDrainsStrongComponent(t *testing.T) {
	l, _ := NewLoop(baseConfig(), 10, 0.5)
	d := eval.Detail{Interleave: 10, Coverage: 0.1, OrderingValid: 1}
	before := l.Config().Delta
	for i := 0; i < 10; i++ {
		l.Observe(d, Binary(false))
	}
	if after := l.Config().Delta; after >= before {
		t.Fatalf("δ did not shrink after bad feedback: %v → %v", before, after)
	}
}

func TestNeutralFeedbackIsStable(t *testing.T) {
	l, _ := NewLoop(baseConfig(), 10, 0.5)
	d := eval.Detail{Interleave: 5, Coverage: 0.5, OrderingValid: 0.5}
	before := l.Config()
	l.Observe(d, Rating(3)) // exactly neutral
	after := l.Config()
	if math.Abs(before.Delta-after.Delta) > 1e-12 {
		t.Fatalf("neutral feedback moved δ: %v → %v", before.Delta, after.Delta)
	}
}

func TestCategoryWeightsUntouched(t *testing.T) {
	cfg := baseConfig()
	cfg.Weights = reward.Weights{Category: reward.Univ2CategoryWeights()}
	l, err := NewLoop(cfg, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	l.Observe(eval.Detail{Interleave: 10, Coverage: 1, OrderingValid: 1}, Rating(5))
	got := l.Config().Weights.Category
	want := reward.Univ2CategoryWeights()
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("category weights should not be adapted")
		}
	}
}
