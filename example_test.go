package rlplanner_test

import (
	"fmt"
	"log"

	"github.com/rlplanner/rlplanner"
)

// The basic flow: pick an instance, learn, plan.
func ExampleNewPlanner() {
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		log.Fatal(err)
	}
	planner, err := rlplanner.NewPlanner(inst, rlplanner.Options{Episodes: 200, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := planner.Learn(); err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(plan.Steps), "courses,", plan.TotalCredits, "credits, valid:", plan.SatisfiesConstraints)
	// Output: 10 courses, 30 credits, valid: true
}

// The gold standard attains the perfect interleaving bound.
func ExampleGoldStandard() {
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		log.Fatal(err)
	}
	gold, err := rlplanner.GoldStandard(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gold score:", gold.Score)
	// Output: gold score: 10
}

// Custom catalogs plug into the same machinery.
func ExampleNewInstance() {
	inst, err := rlplanner.NewInstance(rlplanner.InstanceSpec{
		Name:   "Weekend Workshop",
		Topics: []string{"go", "testing", "profiling", "deploy"},
		Items: []rlplanner.ItemSpec{
			{ID: "intro", Type: "primary", Credits: 1, Topics: []string{"go"}},
			{ID: "tests", Credits: 1, Topics: []string{"testing"}},
			{ID: "perf", Credits: 1, Prereq: "intro", Topics: []string{"profiling"}},
			{ID: "ship", Type: "primary", Credits: 1, Prereq: "tests", Topics: []string{"deploy"}},
		},
		Credits: 4, Primary: 2, Secondary: 2, Gap: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(inst.Name(), "with", inst.NumItems(), "items, start:", inst.DefaultStart())
	// Output: Weekend Workshop with 4 items, start: intro
}

// Policies transfer across related instances (§IV-D of the paper).
func ExamplePlanner_Transfer() {
	nyc, err := rlplanner.InstanceByName("NYC")
	if err != nil {
		log.Fatal(err)
	}
	paris, err := rlplanner.InstanceByName("Paris")
	if err != nil {
		log.Fatal(err)
	}
	p, err := rlplanner.NewPlanner(nyc, rlplanner.Options{Episodes: 100, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		log.Fatal(err)
	}
	abroad, err := p.Transfer(paris, rlplanner.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := abroad.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transferred itinerary is valid:", plan.SatisfiesConstraints)
	// Output: transferred itinerary is valid: true
}

// Interactive sessions alternate between the planner and the user.
func ExamplePlanner_StartSession() {
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		log.Fatal(err)
	}
	p, err := rlplanner.NewPlanner(inst, rlplanner.Options{Episodes: 200, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		log.Fatal(err)
	}
	s, err := p.StartSession(3)
	if err != nil {
		log.Fatal(err)
	}
	// Veto the first suggestion, then let the planner finish.
	if err := s.Reject(s.Suggestions()[0].ID); err != nil {
		log.Fatal(err)
	}
	plan := s.AutoComplete()
	fmt.Println(len(plan.Steps), "courses, valid:", plan.SatisfiesConstraints)
	// Output: 10 courses, valid: true
}
