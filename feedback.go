package rlplanner

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/feedback"
)

// FeedbackLoop is the adaptive extension of §VI: it consumes feedback on
// recommended plans — binary useful/not-useful, categorical 1–5 ratings,
// or rating distributions — and adapts the reward weights used for
// subsequent planning rounds.
type FeedbackLoop struct {
	inst *Instance
	opts Options
	loop *feedback.Loop
	last ReplanStats
}

// ReplanStats reports what the most recent Replan's retraining run did —
// the observability that pins Options.TrainWorkers actually reaching the
// retraining schedule (MergeBatches > 0 iff the parallel protocol ran).
type ReplanStats struct {
	// Episodes is the number of learning episodes the retrain completed.
	Episodes int
	// MergeBatches counts the parallel schedule's deterministic merge
	// rounds (0 when the sequential schedule ran).
	MergeBatches int
	// TrainWorkers echoes the worker count the retrain was configured
	// with.
	TrainWorkers int
}

// NewFeedbackLoop starts a loop for the instance. rate controls update
// aggressiveness in (0, 1]; 0 selects the default.
func NewFeedbackLoop(inst *Instance, opts Options, rate float64) (*FeedbackLoop, error) {
	if inst == nil {
		return nil, fmt.Errorf("rlplanner: nil instance")
	}
	p, err := core.New(inst.inner, opts.toCore())
	if err != nil {
		return nil, err
	}
	planLen := inst.inner.Hard.Length()
	if planLen == 0 {
		planLen = 5 // trips: budget-determined length; 5 is the Example 2 shape
	}
	loop, err := feedback.NewLoop(p.RewardConfig(), planLen, rate)
	if err != nil {
		return nil, err
	}
	return &FeedbackLoop{inst: inst, opts: opts, loop: loop}, nil
}

// ObserveBinary records useful / not-useful feedback on a plan.
func (l *FeedbackLoop) ObserveBinary(plan *Plan, useful bool) error {
	return l.observe(plan, feedback.Binary(useful))
}

// ObserveRating records a categorical 1–5 rating of a plan.
func (l *FeedbackLoop) ObserveRating(plan *Plan, rating float64) error {
	return l.observe(plan, feedback.Rating(rating))
}

// ObserveDistribution records a probability distribution over the 1–5
// rating scale (index 0 = rating 1).
func (l *FeedbackLoop) ObserveDistribution(plan *Plan, dist []float64) error {
	return l.observe(plan, feedback.Distribution(dist))
}

func (l *FeedbackLoop) observe(plan *Plan, sig feedback.Signal) error {
	seq, err := l.resolve(plan)
	if err != nil {
		return err
	}
	d := eval.Evaluate(l.inst.inner, seq)
	l.loop.Observe(d, sig)
	return nil
}

func (l *FeedbackLoop) resolve(plan *Plan) ([]int, error) {
	c := l.inst.inner.Catalog
	seq := make([]int, len(plan.Steps))
	for i, s := range plan.Steps {
		idx, ok := c.Index(s.ID)
		if !ok {
			return nil, fmt.Errorf("rlplanner: plan item %q not in instance %s", s.ID, l.inst.Name())
		}
		seq[i] = idx
	}
	return seq, nil
}

// Weights returns the current adapted reward mix (δ, β, w1, w2).
func (l *FeedbackLoop) Weights() (delta, beta, w1, w2 float64) {
	cfg := l.loop.Config()
	return cfg.Delta, cfg.Beta, cfg.Weights.Primary, cfg.Weights.Secondary
}

// Replan learns a fresh policy under the adapted weights and recommends.
// The retraining run inherits every option the loop was built with —
// including Options.TrainWorkers, so fleets that retrain on feedback use
// the same parallel schedule as their initial training (LastReplan
// exposes the run's merge-batch count as evidence).
func (l *FeedbackLoop) Replan(seed int64) (*Plan, error) {
	cfg := l.loop.Config()
	opts := l.opts
	opts.Delta, opts.Beta = cfg.Delta, cfg.Beta
	opts.W1, opts.W2 = cfg.Weights.Primary, cfg.Weights.Secondary
	opts.Seed = seed
	p, err := NewPlanner(l.inst, opts)
	if err != nil {
		return nil, err
	}
	if err := p.Learn(); err != nil {
		return nil, err
	}
	l.last = ReplanStats{
		Episodes:     p.TrainedEpisodes(),
		MergeBatches: p.MergeBatches(),
		TrainWorkers: opts.TrainWorkers,
	}
	return p.Plan()
}

// LastReplan returns statistics for the most recent Replan (zero value
// before the first one).
func (l *FeedbackLoop) LastReplan() ReplanStats { return l.last }
