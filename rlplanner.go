// Package rlplanner is the public API of RL-Planner, a reproduction of
// "Guided Task Planning Under Complex Constraints" (ICDE 2022). It plans
// sequences of items — courses toward a degree, points of interest into a
// day trip — that satisfy hard constraints (credit totals, primary/
// secondary splits, prerequisite gaps, time and distance budgets) while
// maximizing soft constraints (ideal topic coverage and closeness to an
// expert interleaving template), by learning a SARSA policy over a
// constrained Markov decision process.
//
// Quick start:
//
//	inst, _ := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
//	p, _ := rlplanner.NewPlanner(inst, rlplanner.Options{Seed: 1})
//	_ = p.Learn()
//	plan, _ := p.Plan()
//	fmt.Println(plan.IDs(), plan.Score)
//
// The built-in instances reproduce the paper's datasets: four university
// degree programs (NJIT-style Univ-1 and Stanford-style Univ-2) and two
// city trips (NYC, Paris) derived from a simulated Flickr photo log. Use
// NewInstance to plan over your own catalog.
package rlplanner

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/transfer"
)

// Instance is one planning problem: an item catalog with its hard and
// soft constraints and default parameters.
type Instance struct {
	inner *dataset.Instance
}

// Name returns the instance name, e.g. "Univ-1 M.S. DS-CT" or "Paris".
func (in *Instance) Name() string { return in.inner.Name }

// IsTrip reports whether this is a trip-planning instance.
func (in *Instance) IsTrip() bool { return in.inner.Kind == dataset.TripPlanning }

// NumItems returns the catalog size |I|.
func (in *Instance) NumItems() int { return in.inner.Catalog.Len() }

// Topics returns the topic/theme vocabulary.
func (in *Instance) Topics() []string { return in.inner.Catalog.Vocabulary().Names() }

// GoldScore returns the gold-standard score bound (10, 15 or 5).
func (in *Instance) GoldScore() float64 { return in.inner.GoldScore }

// DefaultStart returns the default starting item id (s_1 of Table III).
func (in *Instance) DefaultStart() string { return in.inner.DefaultStart }

// Fingerprint identifies the instance's catalog — the same value
// Policy.Fingerprint reports for policies trained on it. Two instances
// share a fingerprint exactly when their catalogs are identical.
func (in *Instance) Fingerprint() string { return engine.Fingerprint(in.inner) }

// HasItem reports whether the catalog contains an item with the id.
func (in *Instance) HasItem(id string) bool {
	_, ok := in.inner.Catalog.Index(id)
	return ok
}

// Item describes one catalog item.
type Item struct {
	// ID uniquely identifies the item ("CS 675", "louvre museum").
	ID string
	// Name is the human-readable title.
	Name string
	// Description is the catalog blurb; empty when the dataset has none.
	Description string
	// Primary reports whether the item is required (core / must-visit).
	Primary bool
	// Credits is the credit hours (courses) or visit hours (POIs).
	Credits float64
	// Prerequisite renders the antecedent expression, "[]" when none.
	Prerequisite string
	// Topics lists the topics/themes the item covers.
	Topics []string
	// Popularity is the POI popularity on 1–5 (0 for courses).
	Popularity float64
}

// Items returns the catalog contents.
func (in *Instance) Items() []Item {
	c := in.inner.Catalog
	vocab := c.Vocabulary()
	out := make([]Item, c.Len())
	for i := 0; i < c.Len(); i++ {
		m := c.At(i)
		out[i] = Item{
			ID:           m.ID,
			Name:         m.Name,
			Description:  m.Description,
			Primary:      m.Type == item.Primary,
			Credits:      m.Credits,
			Prerequisite: prereq.Format(m.Prereq),
			Topics:       vocab.Decode(m.Topics),
			Popularity:   m.Popularity,
		}
	}
	return out
}

// builtins holds the built-in instances, constructed once. Building an
// instance compiles its catalog, prerequisite expressions and constraint
// templates from the raw dataset specs — far too expensive to redo on
// every InstanceByName lookup, which sits on the serving hot path.
// Instances are immutable after construction, so sharing them is safe.
var builtins struct {
	once    sync.Once
	courses []*Instance
	trips   []*Instance
	byName  map[string]*Instance
}

func builtinInstances() ([]*Instance, []*Instance, map[string]*Instance) {
	builtins.once.Do(func() {
		for _, in := range append(univ.Univ1All(), univ.Univ2DS()) {
			builtins.courses = append(builtins.courses, &Instance{inner: in})
		}
		for _, in := range trip.Instances() {
			builtins.trips = append(builtins.trips, &Instance{inner: in})
		}
		builtins.byName = make(map[string]*Instance)
		for _, in := range append(builtins.courses, builtins.trips...) {
			builtins.byName[in.Name()] = in
		}
	})
	return builtins.courses, builtins.trips, builtins.byName
}

// CourseInstances returns the four built-in degree programs (§IV-A1):
// Univ-1 M.S. DS-CT, Univ-1 M.S. Cybersecurity, Univ-1 M.S. CS and
// Univ-2 M.S. DS.
func CourseInstances() []*Instance {
	courses, _, _ := builtinInstances()
	return append([]*Instance(nil), courses...)
}

// TripInstances returns the two built-in city trips: NYC and Paris.
func TripInstances() []*Instance {
	_, trips, _ := builtinInstances()
	return append([]*Instance(nil), trips...)
}

// Instances returns every built-in instance.
func Instances() []*Instance {
	courses, trips, _ := builtinInstances()
	out := make([]*Instance, 0, len(courses)+len(trips))
	return append(append(out, courses...), trips...)
}

// InstanceByName finds a built-in instance by its exact name.
func InstanceByName(name string) (*Instance, error) {
	_, _, byName := builtinInstances()
	if in, ok := byName[name]; ok {
		return in, nil
	}
	return nil, fmt.Errorf("rlplanner: unknown instance %q (have %v)", name, instanceNames())
}

func instanceNames() []string {
	var out []string
	for _, in := range Instances() {
		out = append(out, in.Name())
	}
	return out
}

// Options tune the planner; zero values keep the instance's Table III
// defaults. These are the knobs the paper's robustness study sweeps.
type Options struct {
	// Episodes is N, the number of learning episodes.
	Episodes int
	// Alpha is the learning rate α ∈ (0, 1].
	Alpha float64
	// Gamma is the discount factor γ ∈ [0, 1].
	Gamma float64
	// Epsilon is the topic coverage threshold ε.
	Epsilon float64
	// Delta and Beta weight the interleaving-similarity and item-type
	// reward terms (δ + β = 1); set both or neither.
	Delta, Beta float64
	// W1 and W2 are the primary/secondary item weights (w1 + w2 = 1).
	W1, W2 float64
	// MinimumSimilarity switches the reward to the min-similarity variant.
	MinimumSimilarity bool
	// Start is the starting item id (defaults to the instance's).
	Start string
	// Seed makes learning and recommendation reproducible.
	Seed int64
	// TimeLimitHours overrides the trip time threshold t.
	TimeLimitHours float64
	// MaxDistanceKm overrides the trip distance threshold d (negative
	// disables the check).
	MaxDistanceKm float64
	// TrainBudget bounds the wall-clock time of one Train call (0 = no
	// bound). A SARSA run that hits the deadline checkpoints its Q table
	// and returns the best-so-far policy with Policy.Degraded reporting
	// "partial"; a run canceled before any episode fails with the
	// context error.
	TrainBudget time.Duration
	// TrainWorkers selects the training schedule: 0 keeps the sequential
	// Algorithm 1 loop, any value >= 1 runs the batch-synchronous
	// parallel protocol — bit-identical results for every worker count,
	// so the knob only changes throughput, never the learned policy.
	TrainWorkers int
	// DistMatrixMax bounds the catalog size that precomputes an exact
	// n×n distance matrix (0 = geo.DefaultDistMatrixMaxItems, 1024);
	// larger trip catalogs use exact per-call Haversine up to 4096 items
	// and a quantized top-K neighbor store beyond.
	DistMatrixMax int
	// DenseQMax bounds the catalog size that allocates a dense n×n Q
	// table (0 = qtable.DefaultDenseMaxItems, 4096); larger catalogs
	// learn into a sparse table whose memory follows the visited set.
	DenseQMax int
}

func (o Options) toCore() core.Options {
	c := core.Options{
		Episodes:      o.Episodes,
		Alpha:         o.Alpha,
		Gamma:         o.Gamma,
		Epsilon:       o.Epsilon,
		Delta:         o.Delta,
		Beta:          o.Beta,
		W1:            o.W1,
		W2:            o.W2,
		Start:         o.Start,
		Seed:          o.Seed,
		TimeLimit:     o.TimeLimitHours,
		MaxDistanceKm: o.MaxDistanceKm,
		TrainBudget:   o.TrainBudget,
		TrainWorkers:  o.TrainWorkers,
		DistMatrixMax: o.DistMatrixMax,
		DenseQMax:     o.DenseQMax,
	}
	if o.Epsilon != 0 {
		c.HasEpsilon = true
	}
	if o.MinimumSimilarity {
		c.Sim, c.HasSim = seqsim.Minimum, true
	}
	return c
}

// Planner learns and recommends plans for one instance.
type Planner struct {
	inst *Instance
	p    *core.Planner
}

// NewPlanner builds a planner for the instance.
func NewPlanner(inst *Instance, opts Options) (*Planner, error) {
	if inst == nil {
		return nil, fmt.Errorf("rlplanner: nil instance")
	}
	p, err := core.New(inst.inner, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Planner{inst: inst, p: p}, nil
}

// Learn runs the SARSA learning phase (Algorithm 1 of the paper).
func (p *Planner) Learn() error { return p.p.Learn() }

// LearningCurve returns the reward collected per learning episode.
func (p *Planner) LearningCurve() []float64 { return p.p.LearningCurve() }

// TrainedEpisodes returns how many learning episodes the last Learn
// completed (0 before Learn).
func (p *Planner) TrainedEpisodes() int { return p.p.TrainedEpisodes() }

// MergeBatches returns how many deterministic merge rounds the parallel
// training schedule ran during the last Learn — 0 under the sequential
// schedule (Options.TrainWorkers == 0), > 0 whenever the parallel
// protocol actually executed.
func (p *Planner) MergeBatches() int { return p.p.MergeBatches() }

// Plan recommends a plan from the configured start item.
func (p *Planner) Plan() (*Plan, error) {
	seq, err := p.p.Plan()
	if err != nil {
		return nil, err
	}
	return newPlan(p.inst, p.p.Env().Hard(), seq), nil
}

// PlanFrom recommends a plan starting from a specific item.
func (p *Planner) PlanFrom(id string) (*Plan, error) {
	seq, err := p.p.PlanFromID(id)
	if err != nil {
		return nil, err
	}
	return newPlan(p.inst, p.p.Env().Hard(), seq), nil
}

// SavePolicy persists the learned policy as a versioned artifact (the
// same format Policy.Save writes): a header carrying the format version,
// the engine name and the training catalog's fingerprint, then the
// learned values.
func (p *Planner) SavePolicy(w io.Writer) error {
	pol := p.p.Policy()
	if pol == nil {
		return fmt.Errorf("rlplanner: no learned policy (call Learn first)")
	}
	return engine.SaveValues(w, "sarsa", p.inst.inner, pol)
}

// LoadPolicy installs a previously saved policy artifact, skipping
// Learn. The artifact's catalog fingerprint must match this planner's
// instance.
func (p *Planner) LoadPolicy(r io.Reader) error {
	pol, err := engine.LoadValues(r, p.inst.inner)
	if err != nil {
		return err
	}
	return p.p.SetPolicy(pol)
}

// Transfer maps this planner's learned policy onto another instance
// (the §IV-D case study: DS-CT ↔ CS, NYC ↔ Paris). The returned planner
// is ready to Plan without learning.
func (p *Planner) Transfer(to *Instance, opts Options) (*Planner, error) {
	pol := p.p.Policy()
	if pol == nil {
		return nil, fmt.Errorf("rlplanner: no learned policy to transfer")
	}
	mapped, _, err := transfer.Map(pol, p.inst.inner.Catalog, to.inner.Catalog)
	if err != nil {
		return nil, err
	}
	target, err := NewPlanner(to, opts)
	if err != nil {
		return nil, err
	}
	if err := target.p.SetPolicy(mapped); err != nil {
		return nil, err
	}
	return target, nil
}

// PlanStep is one item of a recommended plan.
type PlanStep struct {
	// ID and Name identify the item.
	ID, Name string
	// Primary reports core/must-visit items.
	Primary bool
	// Credits is the item's credit/visit-hours contribution.
	Credits float64
}

// Plan is a recommended item sequence with its evaluation.
type Plan struct {
	// Steps is the ordered recommendation.
	Steps []PlanStep
	// Score is the paper's §IV-A score: 0 when a hard constraint fails,
	// otherwise the interleaving score (courses) or mean POI popularity
	// (trips).
	Score float64
	// SatisfiesConstraints reports whether every hard constraint holds.
	SatisfiesConstraints bool
	// Violations lists failed hard constraints, human-readable.
	Violations []string
	// CoverageRatio is the fraction of ideal topics covered.
	CoverageRatio float64
	// TotalCredits sums the credit/visit hours.
	TotalCredits float64
}

func newPlan(inst *Instance, hard constraints.Hard, seq []int) *Plan {
	c := inst.inner.Catalog
	d := eval.EvaluateWith(inst.inner, hard, seq)
	plan := &Plan{
		Score:                d.Score,
		SatisfiesConstraints: len(d.Violations) == 0,
		CoverageRatio:        d.Coverage,
		TotalCredits:         c.TotalCredits(seq),
	}
	for _, v := range d.Violations {
		plan.Violations = append(plan.Violations, v.String())
	}
	for _, idx := range seq {
		m := c.At(idx)
		plan.Steps = append(plan.Steps, PlanStep{
			ID: m.ID, Name: m.Name, Primary: m.Type == item.Primary, Credits: m.Credits,
		})
	}
	return plan
}

// IDs returns the plan's item ids in order.
func (p *Plan) IDs() []string {
	out := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.ID
	}
	return out
}

// baselinePlan trains the named procedural engine and recommends once.
func baselinePlan(inst *Instance, engineName string, opts Options) (*Plan, error) {
	pol, err := Train(context.Background(), inst, engineName, opts)
	if err != nil {
		return nil, err
	}
	return pol.Recommend("")
}

// GoldStandard synthesizes the handcrafted-quality gold plan (§IV-A2)
// via the "gold" engine.
func GoldStandard(inst *Instance) (*Plan, error) {
	return baselinePlan(inst, "gold", Options{})
}

// EDABaseline runs the greedy EDA next-step baseline (§IV-A2) via the
// "eda" engine.
func EDABaseline(inst *Instance, opts Options) (*Plan, error) {
	return baselinePlan(inst, "eda", opts)
}

// OmegaBaseline runs the adapted OMEGA baseline (§IV-A2) via the
// "omega" engine.
func OmegaBaseline(inst *Instance, opts Options) (*Plan, error) {
	return baselinePlan(inst, "omega", opts)
}

// Ratings are the four user-study questions on the 1–5 scale (§IV-C).
type Ratings struct {
	Overall, Ordering, Coverage, Interleaving float64
}

// RatePlan runs the simulated rater panel over a plan.
func RatePlan(inst *Instance, plan *Plan, raters int, seed int64) (Ratings, error) {
	c := inst.inner.Catalog
	seq := make([]int, len(plan.Steps))
	for i, s := range plan.Steps {
		idx, ok := c.Index(s.ID)
		if !ok {
			return Ratings{}, fmt.Errorf("rlplanner: plan item %q not in instance %s", s.ID, inst.Name())
		}
		seq[i] = idx
	}
	r := eval.RatePlan(inst.inner, seq, eval.StudyConfig{Raters: raters, Seed: seed})
	return Ratings{
		Overall:      r.Overall,
		Ordering:     r.Ordering,
		Coverage:     r.Coverage,
		Interleaving: r.Interleaving,
	}, nil
}

// ExplainPlan renders an advisor-style justification for every plan step:
// its role, the antecedents it satisfies (or violates) and the ideal
// topics it newly covers.
func ExplainPlan(inst *Instance, plan *Plan) ([]string, error) {
	c := inst.inner.Catalog
	seq := make([]int, len(plan.Steps))
	for i, s := range plan.Steps {
		idx, ok := c.Index(s.ID)
		if !ok {
			return nil, fmt.Errorf("rlplanner: plan item %q not in instance %s", s.ID, inst.Name())
		}
		seq[i] = idx
	}
	return eval.RenderExplanation(eval.Explain(inst.inner, inst.inner.Hard, seq)), nil
}
