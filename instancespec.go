package rlplanner

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// ItemSpec describes one item of a custom instance. The JSON field names
// match the export format of cmd/datagen, so exported datasets round-trip
// through LoadInstance.
type ItemSpec struct {
	// ID uniquely identifies the item.
	ID string `json:"id"`
	// Name is the human-readable title (defaults to ID).
	Name string `json:"name,omitempty"`
	// Description is an optional catalog blurb (informational only).
	Description string `json:"description,omitempty"`
	// Type is "primary" or "secondary" (default).
	Type string `json:"type,omitempty"`
	// Credits is the credit hours / visit hours; must be positive.
	Credits float64 `json:"credits"`
	// Prereq is an AND/OR expression over item ids, e.g.
	// "Linear Algebra AND Data Mining" or "(A OR B) AND C"; empty = none.
	Prereq string `json:"prereq,omitempty"`
	// Topics lists topic names the item covers; all must appear in the
	// instance's topic list.
	Topics []string `json:"topics"`
	// Category is an optional grouping index (sub-discipline or dominant
	// theme); -1 / omitted = none. Required when ThemeGap is set.
	Category *int `json:"category,omitempty"`
	// Lat and Lon position POIs for the distance threshold.
	Lat float64 `json:"lat,omitempty"`
	Lon float64 `json:"lon,omitempty"`
	// Popularity is the POI popularity on 1–5 (trips).
	Popularity float64 `json:"popularity,omitempty"`
}

// InstanceSpec describes a custom planning instance.
type InstanceSpec struct {
	// Name identifies the instance.
	Name string `json:"name"`
	// Kind is "course" (default) or "trip". Trips treat Credits as a time
	// ceiling and end plans when it is spent; courses treat it as a floor
	// and plan exactly Primary+Secondary items.
	Kind string `json:"kind,omitempty"`
	// Topics is the topic/theme vocabulary.
	Topics []string `json:"topics"`
	// Items is the catalog.
	Items []ItemSpec `json:"items"`
	// Credits is #cr: the credit floor (courses) or time budget (trips).
	Credits float64 `json:"credits"`
	// Primary and Secondary give the plan split; both zero for
	// budget-only trips.
	Primary   int `json:"primary"`
	Secondary int `json:"secondary"`
	// Gap is the minimum distance between an item and its antecedents.
	Gap int `json:"gap"`
	// MaxDistanceKm is the trip distance threshold d (0 disables).
	MaxDistanceKm float64 `json:"max_distance_km,omitempty"`
	// ThemeGap forbids consecutive same-category items.
	ThemeGap bool `json:"theme_gap,omitempty"`
	// Template optionally lists interleaving permutations like
	// "primary, secondary, secondary"; empty derives one from the split.
	Template []string `json:"template,omitempty"`
	// IdealTopics optionally restricts T_ideal; empty = every topic.
	IdealTopics []string `json:"ideal_topics,omitempty"`
	// DefaultStart is the default starting item id (defaults to the first
	// primary item, or the first item).
	DefaultStart string `json:"default_start,omitempty"`
	// GoldScore optionally pins the gold bound; 0 derives it (plan length
	// for courses, 5 for trips).
	GoldScore float64 `json:"gold_score,omitempty"`
}

// NewInstance builds a planning instance from a spec. The instance works
// with every facility of this package: planners, baselines, the gold
// synthesizer, transfer and the rater panel.
func NewInstance(spec InstanceSpec) (*Instance, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("rlplanner: instance needs a name")
	}
	isTrip := false
	switch spec.Kind {
	case "", "course":
	case "trip":
		isTrip = true
	default:
		return nil, fmt.Errorf("rlplanner: kind %q, want \"course\" or \"trip\"", spec.Kind)
	}
	vocab, err := topics.NewVocabulary(spec.Topics)
	if err != nil {
		return nil, fmt.Errorf("rlplanner: %w", err)
	}

	items := make([]item.Item, len(spec.Items))
	for i, s := range spec.Items {
		ty := item.Secondary
		switch s.Type {
		case "primary":
			ty = item.Primary
		case "", "secondary":
		default:
			return nil, fmt.Errorf("rlplanner: item %q type %q, want \"primary\" or \"secondary\"", s.ID, s.Type)
		}
		vec, err := vocab.Vector(s.Topics...)
		if err != nil {
			return nil, fmt.Errorf("rlplanner: item %q: %w", s.ID, err)
		}
		expr, err := prereq.Parse(s.Prereq)
		if err != nil {
			return nil, fmt.Errorf("rlplanner: item %q: %w", s.ID, err)
		}
		name := s.Name
		if name == "" {
			name = s.ID
		}
		cat := item.NoCategory
		if s.Category != nil {
			cat = *s.Category
		}
		items[i] = item.Item{
			ID: s.ID, Name: name, Description: s.Description,
			Type: ty, Credits: s.Credits,
			Prereq: expr, Topics: vec, Category: cat,
			Lat: s.Lat, Lon: s.Lon, Popularity: s.Popularity,
		}
	}
	catalog, err := item.NewCatalog(vocab, items)
	if err != nil {
		return nil, fmt.Errorf("rlplanner: %w", err)
	}

	mode := constraints.MinCredits
	if isTrip {
		mode = constraints.MaxCredits
	}
	hard := constraints.Hard{
		Credits:       spec.Credits,
		CreditMode:    mode,
		Primary:       spec.Primary,
		Secondary:     spec.Secondary,
		Gap:           spec.Gap,
		MaxDistanceKm: spec.MaxDistanceKm,
		ThemeGap:      spec.ThemeGap,
	}

	var tpl constraints.Template
	if len(spec.Template) > 0 {
		tpl, err = constraints.ParseTemplate(spec.Template...)
		if err != nil {
			return nil, fmt.Errorf("rlplanner: %w", err)
		}
	} else if hard.Length() > 0 {
		tpl = dataset.MakeTemplate(hard.Primary, hard.Secondary)
	} else {
		tpl = dataset.MakeTemplate(2, 3)
	}

	ideal := bitset.New(vocab.Len())
	if len(spec.IdealTopics) == 0 {
		for i := 0; i < vocab.Len(); i++ {
			ideal.Set(i)
		}
	} else {
		ideal, err = vocab.Vector(spec.IdealTopics...)
		if err != nil {
			return nil, fmt.Errorf("rlplanner: ideal topics: %w", err)
		}
	}

	start := spec.DefaultStart
	if start == "" {
		if p := catalog.Primaries(); len(p) > 0 {
			start = catalog.At(p[0]).ID
		} else if catalog.Len() > 0 {
			start = catalog.At(0).ID
		}
	}

	goldScore := spec.GoldScore
	if goldScore == 0 {
		if isTrip {
			goldScore = 5
		} else {
			goldScore = float64(hard.Length())
		}
	}

	defaults := dataset.Defaults{
		Episodes: 500,
		Alpha:    0.75, Gamma: 0.95,
		Epsilon: 0.0025,
		Delta:   0.8, Beta: 0.2,
		W1: 0.6, W2: 0.4,
		Sim: seqsim.Average,
	}
	kind := dataset.CoursePlanning
	if isTrip {
		kind = dataset.TripPlanning
		defaults.Alpha, defaults.Gamma = 0.95, 0.75
		defaults.Delta, defaults.Beta = 0.6, 0.4
	}

	inner := &dataset.Instance{
		Name:         spec.Name,
		Kind:         kind,
		Catalog:      catalog,
		Hard:         hard,
		Soft:         constraints.Soft{Ideal: ideal, Template: tpl},
		DefaultStart: start,
		Defaults:     defaults,
		GoldScore:    goldScore,
	}
	if err := inner.Validate(); err != nil {
		return nil, fmt.Errorf("rlplanner: %w", err)
	}
	return &Instance{inner: inner}, nil
}

// Spec exports the instance back into its spec form (usable with
// NewInstance and as JSON). Built-in instances export faithfully, so a
// dataset can be dumped, edited and reloaded.
func (in *Instance) Spec() InstanceSpec {
	inner := in.inner
	vocab := inner.Catalog.Vocabulary()
	spec := InstanceSpec{
		Name:          inner.Name,
		Kind:          inner.Kind.String(),
		Topics:        vocab.Names(),
		Credits:       inner.Hard.Credits,
		Primary:       inner.Hard.Primary,
		Secondary:     inner.Hard.Secondary,
		Gap:           inner.Hard.Gap,
		MaxDistanceKm: inner.Hard.MaxDistanceKm,
		ThemeGap:      inner.Hard.ThemeGap,
		DefaultStart:  inner.DefaultStart,
		GoldScore:     inner.GoldScore,
	}
	for _, perm := range inner.Soft.Template {
		var parts []byte
		for j, t := range perm {
			if j > 0 {
				parts = append(parts, ", "...)
			}
			parts = append(parts, t.String()...)
		}
		spec.Template = append(spec.Template, string(parts))
	}
	if inner.Soft.Ideal.Count() != vocab.Len() {
		spec.IdealTopics = vocab.Decode(inner.Soft.Ideal)
	}
	for i := 0; i < inner.Catalog.Len(); i++ {
		m := inner.Catalog.At(i)
		is := ItemSpec{
			ID: m.ID, Name: m.Name, Description: m.Description,
			Type: m.Type.String(), Credits: m.Credits,
			Topics: vocab.Decode(m.Topics),
			Lat:    m.Lat, Lon: m.Lon, Popularity: m.Popularity,
		}
		if m.Prereq != nil {
			is.Prereq = m.Prereq.String()
		}
		if m.Category != item.NoCategory {
			cat := m.Category
			is.Category = &cat
		}
		spec.Items = append(spec.Items, is)
	}
	return spec
}

// WriteJSON writes the instance's spec as indented JSON (the cmd/datagen
// export format).
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in.Spec())
}

// LoadInstance reads a JSON instance spec (as written by WriteJSON or
// cmd/datagen) and builds the instance.
func LoadInstance(r io.Reader) (*Instance, error) {
	var spec InstanceSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("rlplanner: decode instance: %w", err)
	}
	return NewInstance(spec)
}
