// Interactive planning (§IV-F): the planner suggests, the user decides.
// This scripted dialogue plans a Paris day trip where the "user" rejects
// every museum after the first — the planner adapts each round and
// auto-completes the rest.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/rlplanner/rlplanner"
)

func main() {
	paris, err := rlplanner.InstanceByName("Paris")
	if err != nil {
		log.Fatal(err)
	}
	planner, err := rlplanner.NewPlanner(paris, rlplanner.Options{Episodes: 300, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	if err := planner.Learn(); err != nil {
		log.Fatal(err)
	}

	s, err := planner.StartSession(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting at %v\n\n", s.PlanIDs())

	for round := 1; !s.Done() && round <= 3; round++ {
		sugs := s.Suggestions()
		if len(sugs) == 0 {
			break
		}
		fmt.Printf("round %d suggestions:\n", round)
		for _, sug := range sugs {
			valid := " "
			if sug.Valid {
				valid = "✓"
			}
			fmt.Printf("  %s %-35s reward %.2f  Q %.2f\n", valid, sug.ID, sug.Reward, sug.Q)
		}

		// Our picky traveler: reject further museums, accept the best rest.
		accepted := false
		for _, sug := range sugs {
			if strings.Contains(sug.ID, "musée") || strings.Contains(sug.ID, "museum") {
				fmt.Printf("  user: no more museums — reject %q\n", sug.ID)
				if err := s.Reject(sug.ID); err != nil {
					log.Fatal(err)
				}
				continue
			}
			fmt.Printf("  user: accept %q\n\n", sug.ID)
			if err := s.Accept(sug.ID); err != nil {
				log.Fatal(err)
			}
			accepted = true
			break
		}
		if !accepted {
			break
		}
	}

	plan := s.AutoComplete()
	fmt.Printf("final itinerary (score %.2f, %.2fh):\n", plan.Score, plan.TotalCredits)
	for i, step := range plan.Steps {
		fmt.Printf("  %d. %s\n", i+1, step.ID)
	}
	fmt.Printf("constraints satisfied: %v\n", plan.SatisfiesConstraints)
}
