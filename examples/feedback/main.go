// Adaptive feedback (the paper's §VI future-work extension): a student
// rates successive course plans and the loop re-weights the reward — if
// the student dislikes plans that interleave well but cover few topics,
// weight shifts from the interleaving term δ to the coverage-bearing
// type term β, and the next plan changes accordingly.
package main

import (
	"fmt"
	"log"

	"github.com/rlplanner/rlplanner"
)

func main() {
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		log.Fatal(err)
	}

	loop, err := rlplanner.NewFeedbackLoop(inst, rlplanner.Options{Seed: 5}, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	plan, err := loop.Replan(5)
	if err != nil {
		log.Fatal(err)
	}
	delta, beta, w1, w2 := loop.Weights()
	fmt.Printf("round 0: δ=%.3f β=%.3f w1=%.3f w2=%.3f  score %.2f  coverage %.0f%%\n",
		delta, beta, w1, w2, plan.Score, 100*plan.CoverageRatio)

	// The student keeps finding the plans topically thin: three rounds of
	// poor ratings, one round of binary disapproval, one distribution.
	signals := []func(*rlplanner.Plan) error{
		func(p *rlplanner.Plan) error { return loop.ObserveRating(p, 2) },
		func(p *rlplanner.Plan) error { return loop.ObserveBinary(p, false) },
		func(p *rlplanner.Plan) error { return loop.ObserveRating(p, 2.5) },
		func(p *rlplanner.Plan) error {
			return loop.ObserveDistribution(p, []float64{0.3, 0.4, 0.2, 0.1, 0})
		},
	}
	for round, observe := range signals {
		if err := observe(plan); err != nil {
			log.Fatal(err)
		}
		plan, err = loop.Replan(int64(6 + round))
		if err != nil {
			log.Fatal(err)
		}
		delta, beta, w1, w2 = loop.Weights()
		fmt.Printf("round %d: δ=%.3f β=%.3f w1=%.3f w2=%.3f  score %.2f  coverage %.0f%%\n",
			round+1, delta, beta, w1, w2, plan.Score, 100*plan.CoverageRatio)
	}

	fmt.Println("\nnegative feedback on interleaving-strong plans drains δ toward β")
}
