// Course planning (the paper's Example 1): an aspiring data scientist
// plans an M.S. DS-CT degree. The example compares RL-Planner against the
// advisor-crafted gold standard and the automated baselines, and runs the
// simulated student panel over both plans.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/rlplanner/rlplanner"
)

func main() {
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d courses, %d topics, start %s\n\n",
		inst.Name(), inst.NumItems(), len(inst.Topics()), inst.DefaultStart())

	// The degree's prerequisite structure, as an advisor would present it.
	fmt.Println("Courses with prerequisites:")
	for _, m := range inst.Items() {
		if m.Prerequisite != "[]" {
			fmt.Printf("  %-10s needs %s\n", m.ID, m.Prerequisite)
		}
	}
	fmt.Println()

	// RL-Planner.
	planner, err := rlplanner.NewPlanner(inst, rlplanner.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := planner.Learn(); err != nil {
		log.Fatal(err)
	}
	rl, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}

	// Baselines.
	goldPlan, err := rlplanner.GoldStandard(inst)
	if err != nil {
		log.Fatal(err)
	}
	edaPlan, err := rlplanner.EDABaseline(inst, rlplanner.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	omegaPlan, err := rlplanner.OmegaBaseline(inst, rlplanner.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, p *rlplanner.Plan) {
		status := "valid"
		if !p.SatisfiesConstraints {
			status = fmt.Sprintf("INVALID (%d violations)", len(p.Violations))
		}
		fmt.Printf("%-12s score %5.2f  %s\n  %s\n",
			name, p.Score, status, strings.Join(p.IDs(), " → "))
	}
	show("RL-Planner", rl)
	show("Gold", goldPlan)
	show("EDA", edaPlan)
	show("OMEGA", omegaPlan)

	// Simulated user study (25 student raters, §IV-C).
	fmt.Println("\nSimulated 25-student panel (1–5):")
	for _, c := range []struct {
		name string
		plan *rlplanner.Plan
	}{{"RL-Planner", rl}, {"Gold", goldPlan}} {
		r, err := rlplanner.RatePlan(inst, c.plan, 25, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s overall %.2f  ordering %.2f  coverage %.2f  interleaving %.2f\n",
			c.name, r.Overall, r.Ordering, r.Coverage, r.Interleaving)
	}
}
