// Transfer learning (the paper's §IV-D case study): a policy learned for
// one task is applied to a related one — M.S. CS ↔ M.S. DS-CT inside the
// same university (shared course ids) and NYC ↔ Paris across cities
// (matched by theme similarity). Fully automated baselines cannot do
// this: they carry no learned state to transfer.
package main

import (
	"fmt"
	"log"

	"github.com/rlplanner/rlplanner"
)

func main() {
	// Course transfer: learn M.S. CS, plan M.S. DS-CT.
	cs, err := rlplanner.InstanceByName("Univ-1 M.S. CS")
	if err != nil {
		log.Fatal(err)
	}
	dsct, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		log.Fatal(err)
	}

	source, err := rlplanner.NewPlanner(cs, rlplanner.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if err := source.Learn(); err != nil {
		log.Fatal(err)
	}
	srcPlan, err := source.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Learnt on %s (score %.2f): %v\n\n", cs.Name(), srcPlan.Score, srcPlan.IDs())

	moved, err := source.Transfer(dsct, rlplanner.Options{Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	dstPlan, err := moved.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Applied to %s (score %.2f):\n", dsct.Name(), dstPlan.Score)
	for _, s := range dstPlan.Steps {
		role := "elective"
		if s.Primary {
			role = "core"
		}
		fmt.Printf("  %s : %s\n", s.ID, role)
	}
	fmt.Printf("constraints satisfied: %v\n\n", dstPlan.SatisfiesConstraints)

	// Trip transfer: learn NYC, itinerary for Paris.
	nyc, err := rlplanner.InstanceByName("NYC")
	if err != nil {
		log.Fatal(err)
	}
	paris, err := rlplanner.InstanceByName("Paris")
	if err != nil {
		log.Fatal(err)
	}
	tourist, err := rlplanner.NewPlanner(nyc, rlplanner.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	if err := tourist.Learn(); err != nil {
		log.Fatal(err)
	}
	abroad, err := tourist.Transfer(paris, rlplanner.Options{Seed: 14})
	if err != nil {
		log.Fatal(err)
	}
	itinerary, err := abroad.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NYC policy applied to Paris (score %.2f): %v\n",
		itinerary.Score, itinerary.IDs())
}
