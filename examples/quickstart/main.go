// Quickstart: learn a policy for the M.S. Data Science (Computational
// Track) program and print a 10-course plan satisfying all degree
// requirements.
package main

import (
	"fmt"
	"log"

	"github.com/rlplanner/rlplanner"
)

func main() {
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		log.Fatal(err)
	}

	planner, err := rlplanner.NewPlanner(inst, rlplanner.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := planner.Learn(); err != nil {
		log.Fatal(err)
	}

	plan, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Course plan for %s (score %.2f / gold %.2f):\n",
		inst.Name(), plan.Score, inst.GoldScore())
	for i, step := range plan.Steps {
		role := "elective"
		if step.Primary {
			role = "core"
		}
		fmt.Printf("  semester %d, slot %d: %-10s %-8s %s\n",
			i/3+1, i%3+1, step.ID, role, step.Name)
	}
	fmt.Printf("constraints satisfied: %v, credits: %.0f\n",
		plan.SatisfiesConstraints, plan.TotalCredits)
}
