// Trip planning (the paper's Example 2): a first-time visitor plans a day
// in Paris under a 6-hour visitation budget and a 5 km walking threshold,
// starting at the Louvre. The planner weaves must-see POIs between
// optional ones, never repeats a theme back-to-back, and places museums
// before restaurants.
package main

import (
	"fmt"
	"log"

	"github.com/rlplanner/rlplanner"
)

func main() {
	paris, err := rlplanner.InstanceByName("Paris")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d POIs across %d themes\n\n", paris.Name(), paris.NumItems(), len(paris.Topics()))

	for _, budget := range []struct {
		hours float64
		km    float64
	}{
		{6, 5}, // the paper's default day trip
		{8, 5}, // a longer day
		{5, 4}, // a tight afternoon
	} {
		planner, err := rlplanner.NewPlanner(paris, rlplanner.Options{
			Seed:           3,
			TimeLimitHours: budget.hours,
			MaxDistanceKm:  budget.km,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := planner.Learn(); err != nil {
			log.Fatal(err)
		}
		plan, err := planner.Plan()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("Itinerary for t ≤ %gh, d ≤ %g km (popularity score %.2f):\n",
			budget.hours, budget.km, plan.Score)
		for i, s := range plan.Steps {
			marker := " "
			if s.Primary {
				marker = "★"
			}
			fmt.Printf("  %d. %s %-35s %.2gh\n", i+1, marker, s.ID, s.Credits)
		}
		fmt.Printf("  total %.2f hours; constraints satisfied: %v\n\n",
			plan.TotalCredits, plan.SatisfiesConstraints)
	}

	// The travel agent's handcrafted benchmark.
	goldPlan, err := rlplanner.GoldStandard(paris)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Travel-agent gold itinerary (score %.2f): %v\n", goldPlan.Score, goldPlan.IDs())
}
